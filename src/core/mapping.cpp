#include "core/mapping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/brown_conrady.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

namespace detail {

std::uint64_t next_map_generation() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

namespace {

WarpMap alloc_map(int width, int height) {
  FE_EXPECTS(width > 0 && height > 0);
  WarpMap map;
  map.width = width;
  map.height = height;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  return map;
}

// Coordinate far outside any realistic source image; keeps packed-map
// sentinel handling and float bounds tests on a single code path.
constexpr float kFarOutside = -1.0e9f;

}  // namespace

WarpMap build_map(const FisheyeCamera& camera, const ViewProjection& view) {
  WarpMap map = alloc_map(view.width(), view.height());
  for (int y = 0; y < map.height; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    for (int x = 0; x < map.width; ++x) {
      const util::Vec3 ray = view.ray_for_pixel(
          {static_cast<double>(x), static_cast<double>(y)});
      const util::Vec2 src = camera.project(ray);
      map.src_x[row + x] = static_cast<float>(src.x);
      map.src_y[row + x] = static_cast<float>(src.y);
    }
  }
  return map;
}

WarpMap build_map_window(const FisheyeCamera& camera,
                         const ViewProjection& view, par::Rect window) {
  WarpMap map = alloc_map(window.width(), window.height());
  for (int y = 0; y < map.height; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    const int vy = window.y0 + y;
    for (int x = 0; x < map.width; ++x) {
      // Absolute view coordinates, cast exactly as build_map casts them, so
      // the window is a bit-exact crop of the full map.
      const util::Vec3 ray = view.ray_for_pixel(
          {static_cast<double>(window.x0 + x), static_cast<double>(vy)});
      const util::Vec2 src = camera.project(ray);
      map.src_x[row + x] = static_cast<float>(src.x);
      map.src_y[row + x] = static_cast<float>(src.y);
    }
  }
  return map;
}

WarpMap build_synthesis_map(const FisheyeCamera& camera, int scene_width,
                            int scene_height, double scene_focal_px,
                            int fisheye_width, int fisheye_height) {
  FE_EXPECTS(scene_width > 0 && scene_height > 0 && scene_focal_px > 0.0);
  WarpMap map = alloc_map(fisheye_width, fisheye_height);
  const double scx = 0.5 * (scene_width - 1);
  const double scy = 0.5 * (scene_height - 1);
  for (int y = 0; y < fisheye_height; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * fisheye_width;
    for (int x = 0; x < fisheye_width; ++x) {
      const util::Vec3 ray = camera.unproject(
          {static_cast<double>(x), static_cast<double>(y)});
      if (ray.z <= 1e-6) {  // at or behind the scene plane
        map.src_x[row + x] = kFarOutside;
        map.src_y[row + x] = kFarOutside;
        continue;
      }
      map.src_x[row + x] =
          static_cast<float>(scx + scene_focal_px * ray.x / ray.z);
      map.src_y[row + x] =
          static_cast<float>(scy + scene_focal_px * ray.y / ray.z);
    }
  }
  return map;
}

WarpMap build_brown_conrady_map(const BrownConrady& model, double src_cx,
                                double src_cy, const PerspectiveView& view) {
  WarpMap map = alloc_map(view.width(), view.height());
  const util::Vec2 centre{src_cx, src_cy};
  const double ocx = 0.5 * (view.width() - 1);
  const double ocy = 0.5 * (view.height() - 1);
  // The classical pipeline treats the output as undistorted pixel
  // coordinates (normalized by the model focal) and pushes them through the
  // polynomial forward model to find where to sample.
  const double scale = model.focal() / view.focal();
  for (int y = 0; y < map.height; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    for (int x = 0; x < map.width; ++x) {
      const util::Vec2 undist_px{src_cx + (x - ocx) * scale,
                                 src_cy + (y - ocy) * scale};
      const util::Vec2 src = model.distort_pixel(undist_px, centre);
      map.src_x[row + x] = static_cast<float>(src.x);
      map.src_y[row + x] = static_cast<float>(src.y);
    }
  }
  return map;
}

PackedMap pack_map(const WarpMap& map, int src_width, int src_height,
                   int frac_bits) {
  FE_EXPECTS(src_width > 0 && src_height > 0);
  FE_EXPECTS(frac_bits >= 1 && frac_bits <= 22);
  PackedMap packed;
  packed.width = map.width;
  packed.height = map.height;
  packed.frac_bits = frac_bits;
  packed.fx.resize(map.pixel_count());
  packed.fy.resize(map.pixel_count());

  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  // The packed kernel clamps the bilinear footprint instead of testing it,
  // so coordinates are clamped into [0, dim-1] with the fractional part of
  // edge pixels zeroed; fully-outside pixels become the sentinel.
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    const double sx = map.src_x[i];
    const double sy = map.src_y[i];
    const bool outside = sx <= -1.0 || sy <= -1.0 ||
                         sx >= static_cast<double>(src_width) ||
                         sy >= static_cast<double>(src_height);
    if (outside) {
      packed.fx[i] = PackedMap::kInvalid;
      packed.fy[i] = PackedMap::kInvalid;
      continue;
    }
    const double cx = util::clamp(sx, 0.0, src_width - 1.0);
    const double cy = util::clamp(sy, 0.0, src_height - 1.0);
    packed.fx[i] = static_cast<std::int32_t>(std::lround(cx * scale));
    packed.fy[i] = static_cast<std::int32_t>(std::lround(cy * scale));
    // lround can land exactly on (dim-1).0; the kernel's x0+1 access is then
    // clamped there, so no further adjustment is needed.
  }
  return packed;
}

namespace {

// Map value at (px, py) for grid building, clamped to the coordinate
// saturation range. Positions up to one stride past the image edge are
// linearly extrapolated from the last in-range sample and its neighbour,
// so the trailing grid line continues the warp instead of flattening it.
double sample_extrapolated(const WarpMap& map, const std::vector<float>& v,
                           int px, int py) {
  const auto clamped = [](double x) {
    return util::clamp(x, -CompactMap::kCoordLimitPx,
                       CompactMap::kCoordLimitPx);
  };
  const int cx = std::min(px, map.width - 1);
  const int cy = std::min(py, map.height - 1);
  double val = clamped(v[map.index(cx, cy)]);
  if (px > cx && map.width > 1)
    val += (px - cx) *
           (clamped(v[map.index(cx, cy)]) - clamped(v[map.index(cx - 1, cy)]));
  if (py > cy && map.height > 1)
    val += (py - cy) *
           (clamped(v[map.index(cx, cy)]) - clamped(v[map.index(cx, cy - 1)]));
  return clamped(val);
}

}  // namespace

CompactMap compact_map(const WarpMap& map, int src_width, int src_height,
                       int stride, int frac_bits) {
  FE_EXPECTS(src_width > 0 && src_height > 0);
  FE_EXPECTS(stride >= 1 && stride <= 64 && (stride & (stride - 1)) == 0);
  // frac_bits is capped at 16 (not pack_map's 22) so saturated coordinates
  // still fit int32: kCoordLimitPx << 16 < 2^31.
  FE_EXPECTS(frac_bits >= 1 && frac_bits <= 16);
  CompactMap cm;
  cm.width = map.width;
  cm.height = map.height;
  cm.stride = stride;
  cm.frac_bits = frac_bits;
  cm.grid_w = (map.width - 1) / stride + 2;
  cm.grid_h = (map.height - 1) / stride + 2;
  cm.src_width = src_width;
  cm.src_height = src_height;
  cm.gx.resize(static_cast<std::size_t>(cm.grid_w) * cm.grid_h);
  cm.gy.resize(cm.gx.size());

  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  for (int cy = 0; cy < cm.grid_h; ++cy) {
    for (int cx = 0; cx < cm.grid_w; ++cx) {
      const int px = cx * stride;
      const int py = cy * stride;
      cm.gx[cm.index(cx, cy)] = static_cast<std::int32_t>(
          std::lround(sample_extrapolated(map, map.src_x, px, py) * scale));
      cm.gy[cm.index(cx, cy)] = static_cast<std::int32_t>(
          std::lround(sample_extrapolated(map, map.src_y, px, py) * scale));
    }
  }

  // Measure reconstruction error over source-valid pixels (pack_map's
  // validity rule); per-pixel error is the worse of the two axes.
  double max_err = 0.0, sum_err = 0.0;
  std::size_t valid = 0;
  for (int y = 0; y < map.height; ++y) {
    for (int x = 0; x < map.width; ++x) {
      const double sx = map.src_x[map.index(x, y)];
      const double sy = map.src_y[map.index(x, y)];
      if (sx <= -1.0 || sy <= -1.0 || sx >= static_cast<double>(src_width) ||
          sy >= static_cast<double>(src_height))
        continue;
      const CompactEntry e = reconstruct_entry(cm, x, y);
      const double err = std::max(std::abs(e.fx / scale - sx),
                                  std::abs(e.fy / scale - sy));
      max_err = std::max(max_err, err);
      sum_err += err;
      ++valid;
    }
  }
  cm.max_error = static_cast<float>(max_err);
  cm.mean_error =
      valid > 0 ? static_cast<float>(sum_err / static_cast<double>(valid))
                : 0.0f;
  return cm;
}

par::Rect source_bbox(const WarpMap& map, par::Rect r, int src_width,
                      int src_height) {
  FE_EXPECTS(r.x0 >= 0 && r.y0 >= 0 && r.x1 <= map.width &&
             r.y1 <= map.height);
  float min_x = std::numeric_limits<float>::max();
  float min_y = std::numeric_limits<float>::max();
  float max_x = std::numeric_limits<float>::lowest();
  float max_y = std::numeric_limits<float>::lowest();
  bool any = false;
  for (int y = r.y0; y < r.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    for (int x = r.x0; x < r.x1; ++x) {
      const float sx = map.src_x[row + x];
      const float sy = map.src_y[row + x];
      if (sx <= -1.0f || sy <= -1.0f || sx >= static_cast<float>(src_width) ||
          sy >= static_cast<float>(src_height))
        continue;
      any = true;
      min_x = std::min(min_x, sx);
      min_y = std::min(min_y, sy);
      max_x = std::max(max_x, sx);
      max_y = std::max(max_y, sy);
    }
  }
  if (!any) return {};
  // Expand to the bilinear footprint and clamp to the source.
  par::Rect box;
  box.x0 = std::max(0, static_cast<int>(std::floor(min_x)));
  box.y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  box.x1 = std::min(src_width, static_cast<int>(std::floor(max_x)) + 2);
  box.y1 = std::min(src_height, static_cast<int>(std::floor(max_y)) + 2);
  return box;
}

double valid_fraction(const WarpMap& map, int src_width, int src_height) {
  std::size_t valid = 0;
  for (std::size_t i = 0; i < map.pixel_count(); ++i) {
    const float sx = map.src_x[i];
    const float sy = map.src_y[i];
    if (sx > -1.0f && sy > -1.0f && sx < static_cast<float>(src_width) &&
        sy < static_cast<float>(src_height))
      ++valid;
  }
  return static_cast<double>(valid) / static_cast<double>(map.pixel_count());
}

par::Rect source_bbox(const CompactMap& map, par::Rect r) {
  FE_EXPECTS(r.x0 >= 0 && r.y0 >= 0 && r.x1 <= map.width &&
             r.y1 <= map.height);
  if (r.empty()) return {};
  // Reconstruction is a convex combination (plus <=1 fixed-point quantum of
  // rounding) of the grid entries adjacent to the rect, so the entry range
  // bounds every reconstructed coordinate — no per-pixel pass needed.
  const int shift = map.shift();
  const int cx0 = r.x0 >> shift, cx1 = ((r.x1 - 1) >> shift) + 1;
  const int cy0 = r.y0 >> shift, cy1 = ((r.y1 - 1) >> shift) + 1;
  std::int32_t min_gx = std::numeric_limits<std::int32_t>::max();
  std::int32_t min_gy = min_gx;
  std::int32_t max_gx = std::numeric_limits<std::int32_t>::min();
  std::int32_t max_gy = max_gx;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t i = map.index(cx, cy);
      min_gx = std::min(min_gx, map.gx[i]);
      max_gx = std::max(max_gx, map.gx[i]);
      min_gy = std::min(min_gy, map.gy[i]);
      max_gy = std::max(max_gy, map.gy[i]);
    }
  }
  const double scale = static_cast<double>(std::int64_t{1} << map.frac_bits);
  const double min_x = (min_gx - 1) / scale, max_x = (max_gx + 1) / scale;
  const double min_y = (min_gy - 1) / scale, max_y = (max_gy + 1) / scale;
  // Entirely outside on either axis => no pixel can reconstruct as valid.
  if (max_x <= -1.0 || min_x >= static_cast<double>(map.src_width) ||
      max_y <= -1.0 || min_y >= static_cast<double>(map.src_height))
    return {};
  // The kernel clamps valid coordinates into [0, dim-1] before sampling, so
  // the window of touched source pixels is the clamped range's footprint.
  par::Rect box;
  box.x0 = std::max(0, static_cast<int>(std::floor(min_x)));
  box.y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  box.x1 = std::min(map.src_width,
                    static_cast<int>(std::floor(
                        std::min(max_x, map.src_width - 1.0))) + 2);
  box.y1 = std::min(map.src_height,
                    static_cast<int>(std::floor(
                        std::min(max_y, map.src_height - 1.0))) + 2);
  return box;
}

double valid_fraction(const CompactMap& map) {
  std::size_t valid = 0;
  for (int y = 0; y < map.height; ++y)
    for (int x = 0; x < map.width; ++x)
      if (compact_entry_valid(map, reconstruct_entry(map, x, y))) ++valid;
  return static_cast<double>(valid) / static_cast<double>(map.pixel_count());
}

}  // namespace fisheye::core
