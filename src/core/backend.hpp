// Execution backends: how a frame's remap work is scheduled onto hardware.
//
// The study's axis of comparison is exactly this interface: the same warp,
// executed serially, across a thread pool with different schedules and
// decompositions, through the SIMD kernel, or on a simulated accelerator
// (src/accel provides those backends).
#pragma once

#include <memory>
#include <string>

#include "core/camera.hpp"
#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "core/remap.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partition.hpp"
#include "parallel/thread_pool.hpp"

namespace fisheye::core {

/// How source coordinates are obtained per output pixel.
enum class MapMode {
  FloatLut,   ///< precomputed float WarpMap
  PackedLut,  ///< precomputed fixed-point PackedMap (bilinear only)
  OnTheFly,   ///< recomputed per pixel from camera + view
};

[[nodiscard]] constexpr const char* map_mode_name(MapMode m) noexcept {
  switch (m) {
    case MapMode::FloatLut: return "float-lut";
    case MapMode::PackedLut: return "packed-lut";
    case MapMode::OnTheFly: return "on-the-fly";
  }
  return "?";
}

/// Everything a backend needs to produce one output frame. Pointers are
/// non-owning and valid for the duration of execute(); which of map/packed/
/// camera+view are non-null depends on `mode`.
struct ExecContext {
  img::ConstImageView<std::uint8_t> src;
  img::ImageView<std::uint8_t> dst;
  const WarpMap* map = nullptr;
  const PackedMap* packed = nullptr;
  const FisheyeCamera* camera = nullptr;
  const ViewProjection* view = nullptr;
  RemapOptions opts;
  MapMode mode = MapMode::FloatLut;
  bool fast_math = false;
};

/// Strategy interface. Implementations must be safe to call concurrently
/// from one thread at a time (no internal frame-to-frame state).
class Backend {
 public:
  virtual ~Backend() = default;
  virtual void execute(const ExecContext& ctx) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Executes a rectangle of ctx.dst with the serial kernels; shared by every
/// CPU backend below and by the accelerator simulators.
void execute_rect(const ExecContext& ctx, par::Rect rect);

/// Single-thread whole-frame execution.
class SerialBackend final : public Backend {
 public:
  void execute(const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "serial"; }
};

/// Thread-pool execution with a choice of decomposition and schedule.
class PoolBackend final : public Backend {
 public:
  struct Options {
    par::Schedule schedule = par::Schedule::Static;
    par::PartitionKind partition = par::PartitionKind::RowBlocks;
    /// RowBlocks/ColumnBlocks chunk count; 0 = 4 x pool size.
    int chunks = 0;
    int tile_w = 64;
    int tile_h = 64;
  };

  /// `pool` must outlive the backend.
  explicit PoolBackend(par::ThreadPool& pool);
  PoolBackend(par::ThreadPool& pool, Options options);

  void execute(const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  par::ThreadPool& pool_;
  Options options_;
};

/// SoA SIMD kernel (bilinear + FloatLut only) run across a thread pool.
class SimdBackend final : public Backend {
 public:
  /// `pool` may be null for single-threaded SIMD.
  explicit SimdBackend(par::ThreadPool* pool = nullptr) : pool_(pool) {}

  void execute(const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  par::ThreadPool* pool_;
};

#ifdef _OPENMP
/// OpenMP parallel-for over row blocks; the study's original multicore
/// implementation style. Only built when the toolchain provides OpenMP.
class OpenMpBackend final : public Backend {
 public:
  explicit OpenMpBackend(int threads = 0) : threads_(threads) {}
  void execute(const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "openmp"; }

 private:
  int threads_;
};
#endif

}  // namespace fisheye::core
