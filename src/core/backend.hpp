// Execution backends: how a frame's remap work is scheduled onto hardware.
//
// The study's axis of comparison is exactly this interface: the same warp,
// executed serially, across a thread pool with different schedules and
// decompositions, through the SIMD kernel, or on a simulated accelerator
// (src/accel provides those backends, src/cluster the message-passing one).
//
// The interface is a plan/execute split (see execution_plan.hpp):
//   plan(ctx)            one-time setup for frames of ctx's shape
//   execute(plan, ctx)   steady-state: one frame under an existing plan
//   execute(ctx)         one-shot convenience with an internal plan cache
// Backends are created either directly or — preferably — by spec string
// through BackendRegistry (backend_registry.hpp).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/camera.hpp"
#include "core/execution_plan.hpp"
#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "core/remap.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partition.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace fisheye::core {

/// Map representation requested by a spec's `map=` option
/// (map=float | map=packed | map=compact:<stride>). When set and different
/// from the context's own representation, the backend converts the
/// context's full-resolution WarpMap at plan time and carries the result
/// in the plan (ConvertedMap), so steady-state frames stream the selected
/// format. An unset choice executes the context as-is.
struct MapChoice {
  std::optional<MapMode> mode;
  int stride = 8;      ///< CompactLut grid pitch
  int frac_bits = 14;  ///< fixed-point precision of converted maps

  [[nodiscard]] bool set() const noexcept { return mode.has_value(); }
  /// Canonical option text, e.g. "map=compact:8"; empty when unset.
  [[nodiscard]] std::string spec_text() const;
  /// Parse an option value ("float", "packed", "compact", "compact:8").
  /// Throws InvalidArgument naming the offending token.
  static MapChoice parse(const std::string& value);
  /// The option values a backend supporting `modes` accepts, for help text.
  static constexpr const char* kHelp = "map=float|packed|compact:<stride>";
};

/// Scheduling policy requested by a spec's `schedule=` option (or the
/// equivalent bare flag on `pool`). Thin parse/help wrapper around
/// par::Schedule, mirroring MapChoice so every factory rejects unknown
/// tokens with the same diagnostic shape.
struct ScheduleChoice {
  /// Parse an option value ("static", "dynamic", "guided", "steal").
  /// Throws InvalidArgument naming the offending token.
  static par::Schedule parse(const std::string& value);
  /// The option values schedule-aware CPU backends accept, for help text.
  static constexpr const char* kHelp = "schedule=static|dynamic|guided|steal";
};

/// Kernel-datapath selection requested by a spec's `datapath=` option on
/// the simd backend. Thin parse/help wrapper mirroring ScheduleChoice;
/// the selected variant is still subject to core::effective_variant() at
/// plan time (gather degrades to SoA/scalar off-AVX2, FISHEYE_FORCE_SCALAR
/// grounds everything), so a spec tuned on one host runs everywhere.
struct DatapathChoice {
  /// Parse an option value ("scalar", "soa", "gather"). Throws
  /// InvalidArgument naming the offending token.
  static KernelVariant parse(const std::string& value);
  /// Canonical option token for a variant ("scalar"/"soa"/"gather").
  [[nodiscard]] static const char* token(KernelVariant v) noexcept;
  /// The option values datapath-aware backends accept, for help text.
  static constexpr const char* kHelp = "datapath=scalar|soa|gather";
};

/// One point of the plan-time tuning space the autotuner searches: kernel
/// datapath, SoA strip length, tile shape, and map representation. Unset
/// axes (nullopt / 0) keep the backend's configured default for that axis.
struct TunedSpec {
  std::optional<KernelVariant> datapath;
  int strip = 0;                 ///< SoA/gather strip pixels (0 = default)
  int tile_w = 0, tile_h = 0;    ///< tile partition override (0 = default)
  std::optional<MapChoice> map;  ///< map-representation override

  /// Canonical slash token, e.g. "gather/128/-/-" ('-' = axis unset).
  [[nodiscard]] std::string token() const;
  /// Parse a token (a tuned= value other than "auto"). Throws
  /// InvalidArgument naming the tuned= option.
  static TunedSpec parse(const std::string& value);

  [[nodiscard]] bool operator==(const TunedSpec&) const noexcept = default;
};

/// tuned= option state carried by a backend: requested-but-pending
/// ("tuned=auto" before the first plan measures) or resolved to a concrete
/// TunedSpec — in which case name() carries the resolved token and
/// BackendRegistry::create(name()) reconstructs the tuned backend without
/// re-measurement.
struct TunedChoice {
  bool requested = false;
  bool pending = false;
  TunedSpec spec;

  /// "tuned=auto", "tuned=<token>", or "" when not requested.
  [[nodiscard]] std::string spec_text() const;
  /// Parse the tuned= option value ("auto" or a TunedSpec token).
  static TunedChoice parse(const std::string& value);
  /// The option values tuning-aware backends accept, for help text.
  static constexpr const char* kHelp =
      "tuned=auto|<datapath|->/<strip|->/<WxH|->/<map|->";
};

/// Strategy interface with a plan/execute split.
///
/// Thread-safety: plan() is const-like and reentrant; a given ExecutionPlan
/// may be executed by one thread at a time (frames write its
/// instrumentation slots); the one-shot execute(ctx) additionally caches a
/// plan inside the backend, so a backend instance used through that path
/// must not be shared across threads.
class Backend {
 public:
  virtual ~Backend() = default;

  /// One-time planning for frames shaped like `ctx`. Only geometry, map,
  /// and options are read — the views' pixel pointers may be null.
  /// Throws InvalidArgument when the backend cannot execute this
  /// configuration at all (wrong map mode, unsupported interpolation).
  [[nodiscard]] virtual ExecutionPlan plan(const ExecContext& ctx);

  /// Steady-state execution of one frame. `plan` must have been produced
  /// by this backend for a matching context (checked).
  virtual void execute(const ExecutionPlan& plan, const ExecContext& ctx) = 0;

  /// One-shot convenience: plans on first use, replans whenever the
  /// context stops matching (geometry, sampling options, or map identity
  /// — address, generation, dimensions — change).
  void execute(const ExecContext& ctx);

  /// Canonical registry spec for this backend:
  /// BackendRegistry::create(name()) reconstructs an equivalent instance.
  [[nodiscard]] virtual std::string name() const = 0;

  /// The one-shot path's cached plan (invalid before the first execute).
  /// Exposes uniform per-tile stats: last_plan().tile_stats().
  [[nodiscard]] const ExecutionPlan& last_plan() const noexcept {
    return cached_plan_;
  }

  /// Spec-selected map representation (the map= option). Participates in
  /// name(), so plans made under different choices never alias.
  void set_map_choice(const MapChoice& choice) {
    map_choice_ = choice;
    name_cache_.clear();
  }
  [[nodiscard]] const MapChoice& map_choice() const noexcept {
    return map_choice_;
  }

  /// Spec-selected tuning (the tuned= option). "auto" defers the choice to
  /// plan time: the first plan() measures the backend's candidate set on
  /// synthesized frames (core/autotune.hpp) and locks the winner into the
  /// name, so create(name()) round-trips without re-measuring.
  void set_tuned(const TunedChoice& choice) {
    tuned_ = choice;
    name_cache_.clear();
  }
  [[nodiscard]] const TunedChoice& tuned() const noexcept { return tuned_; }

 protected:
  /// Stamp a plan with this backend's key for `ctx`: resolves the tile
  /// kernel (of `variant`, `soa_strip`) against the effective — post map=
  /// conversion — context, attaches `converted`, and stores the plan-time
  /// byte estimates in the plan's Workspace.
  [[nodiscard]] ExecutionPlan make_plan(
      const ExecContext& ctx, std::vector<par::Rect> tiles,
      std::shared_ptr<void> state = nullptr,
      std::shared_ptr<const ConvertedMap> converted = nullptr,
      KernelVariant variant = KernelVariant::Scalar, int soa_strip = 0) const;

  /// Lock a measured tuned= winner in: subsequent name()/plan() calls carry
  /// the resolved token instead of "auto".
  void resolve_tuned(const TunedSpec& spec) {
    tuned_.spec = spec;
    tuned_.pending = false;
    name_cache_.clear();
  }

  /// Validate plan/context agreement at the top of execute() overrides.
  void check_plan(const ExecutionPlan& plan, const ExecContext& ctx) const;

  /// Resolve map_choice() against `ctx`: the context the backend will
  /// actually execute. Fills `converted` (to be attached to the plan via
  /// make_plan) when a representation change is needed; throws
  /// InvalidArgument when the choice cannot be satisfied.
  [[nodiscard]] ExecContext resolve_map(
      const ExecContext& ctx,
      std::shared_ptr<const ConvertedMap>& converted) const;

  /// Same, for an explicit choice (a tuned= map override instead of the
  /// backend's own map= option).
  [[nodiscard]] ExecContext resolve_map(
      const ExecContext& ctx, std::shared_ptr<const ConvertedMap>& converted,
      const MapChoice& choice) const;

  /// name(), computed once and cached: the steady-state paths compare it
  /// every frame and must not pay a string allocation to do so.
  [[nodiscard]] const std::string& cached_name() const;

  /// Invalidate the cached name after a derived-class option changes what
  /// name() returns (e.g. SimdBackend::set_datapath).
  void clear_name_cache() noexcept { name_cache_.clear(); }

  /// Append the canonical map= and tuned= options to a spec string (no-op
  /// for unset choices).
  [[nodiscard]] std::string decorate_spec(std::string spec) const;

 private:
  ExecutionPlan cached_plan_;
  MapChoice map_choice_;
  TunedChoice tuned_;
  mutable std::string name_cache_;
};

/// Single-thread whole-frame execution (one plan tile).
class SerialBackend final : public Backend {
 public:
  using Backend::execute;
  void execute(const ExecutionPlan& plan, const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override {
    return decorate_spec("serial");
  }
};

/// Thread-pool execution with a choice of decomposition and schedule.
/// The partition is computed once at plan time and reused every frame.
///
/// schedule=steal additionally reorders the partition at plan time by
/// Morton code of each tile's *source* bounding-box centroid and
/// pre-assigns contiguous runs of that order to the workers as initial
/// deque contents (core/tile_order.hpp, parallel/work_stealing.hpp):
/// workers walk source-adjacent tiles and steal only to repair imbalance.
class PoolBackend final : public Backend {
 public:
  struct Options {
    par::Schedule schedule = par::Schedule::Static;
    par::PartitionKind partition = par::PartitionKind::RowBlocks;
    /// RowBlocks/ColumnBlocks chunk count; 0 = 4 x pool size.
    int chunks = 0;
    int tile_w = 64;
    int tile_h = 64;
  };

  /// `pool` must outlive the backend.
  explicit PoolBackend(par::ThreadPool& pool);
  PoolBackend(par::ThreadPool& pool, Options options);
  /// Owns a private pool of `threads` workers (0 = hardware concurrency).
  explicit PoolBackend(Options options, unsigned threads = 0);

  using Backend::execute;
  [[nodiscard]] ExecutionPlan plan(const ExecContext& ctx) override;
  void execute(const ExecutionPlan& plan, const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  /// plan() with explicit tuning overrides (tile shape, map); the
  /// autotuner's probe path and the resolved tuned= path.
  [[nodiscard]] ExecutionPlan plan_with(const ExecContext& ctx,
                                        const TunedSpec& t);
  /// Resolve a pending tuned=auto by measuring this backend's candidate
  /// tile shapes on synthesized frames of ctx's geometry.
  void maybe_autotune(const ExecContext& ctx);

  std::unique_ptr<par::ThreadPool> owned_pool_;
  par::ThreadPool& pool_;
  /// Steal-schedule executor over pool_; created on first steal plan and
  /// reused every frame (persistent per-worker deques).
  std::unique_ptr<par::WorkStealingPool> steal_;
  Options options_;
};

/// SoA SIMD kernel (bilinear + FloatLut + constant border only), optionally
/// run across a thread pool over row blocks planned once.
class SimdBackend final : public Backend {
 public:
  /// `pool` may be null for single-threaded SIMD.
  explicit SimdBackend(par::ThreadPool* pool = nullptr) : pool_(pool) {}
  /// Owns a private pool; `threads` == 1 means no pool (pure serial SIMD),
  /// 0 means hardware concurrency.
  explicit SimdBackend(unsigned threads);

  using Backend::execute;
  [[nodiscard]] ExecutionPlan plan(const ExecContext& ctx) override;
  void execute(const ExecutionPlan& plan, const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

  /// Explicit kernel datapath (the datapath= option); SimdSoa by default.
  /// Subject to effective_variant() degrade at plan time.
  void set_datapath(KernelVariant v);
  [[nodiscard]] KernelVariant datapath() const noexcept { return datapath_; }

 private:
  /// plan() with explicit tuning overrides (datapath, strip, map); the
  /// autotuner's probe path and the resolved tuned= path.
  [[nodiscard]] ExecutionPlan plan_with(const ExecContext& ctx,
                                        const TunedSpec& t);
  /// Resolve a pending tuned=auto by measuring this backend's candidate
  /// set (datapath × strip × map representation) on synthesized frames.
  void maybe_autotune(const ExecContext& ctx);

  std::unique_ptr<par::ThreadPool> owned_pool_;
  par::ThreadPool* pool_ = nullptr;
  KernelVariant datapath_ = KernelVariant::SimdSoa;
};

#ifdef _OPENMP
/// OpenMP parallel-for over row blocks; the study's original multicore
/// implementation style. Only built when the toolchain provides OpenMP.
///
/// schedule= selects the OpenMP loop schedule over the planned row blocks
/// (static, dynamic, guided); schedule=steal instead plans a Morton-ordered
/// tile partition (core/tile_order.hpp) and drives par::StealScheduler from
/// an `omp parallel` team — same deques and counters as PoolBackend, OpenMP
/// threads as the lanes.
class OpenMpBackend final : public Backend {
 public:
  explicit OpenMpBackend(int threads = 0,
                         par::Schedule schedule = par::Schedule::Static)
      : threads_(threads), schedule_(schedule) {}

  using Backend::execute;
  [[nodiscard]] ExecutionPlan plan(const ExecContext& ctx) override;
  void execute(const ExecutionPlan& plan, const ExecContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  int threads_;
  par::Schedule schedule_;
  /// Deques for schedule=steal; sized to the team on first steal frame.
  std::unique_ptr<par::StealScheduler> steal_;
};
#endif

}  // namespace fisheye::core
