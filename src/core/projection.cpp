#include "core/projection.hpp"

#include <cmath>
#include <sstream>

#include "core/mapping.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

ViewProjection::ViewProjection()
    : generation_(detail::next_map_generation()) {}

PerspectiveView::PerspectiveView(int width, int height, double focal_px,
                                 util::Mat3 rotation)
    : width_(width),
      height_(height),
      focal_(focal_px),
      cx_(0.5 * (width - 1)),
      cy_(0.5 * (height - 1)),
      rotation_(rotation) {
  FE_EXPECTS(width > 0 && height > 0 && focal_px > 0.0);
}

PerspectiveView PerspectiveView::ptz(int width, int height, double pan,
                                     double tilt, double hfov) {
  FE_EXPECTS(hfov > 0.0 && hfov < util::kPi);
  const double focal = 0.5 * width / std::tan(hfov / 2.0);
  // Tilt about X after panning about Y. rot_x(a) maps +Z toward -Y, and
  // image +Y points down, so looking down (+tilt) needs the negative angle.
  const util::Mat3 rot = util::Mat3::rot_y(pan) * util::Mat3::rot_x(-tilt);
  return {width, height, focal, rot};
}

util::Vec3 PerspectiveView::ray_for_pixel(util::Vec2 px) const {
  const util::Vec3 view_ray{(px.x - cx_) / focal_, (px.y - cy_) / focal_, 1.0};
  return rotation_ * view_ray;
}

EquirectangularView::EquirectangularView(int width, int height, double hfov,
                                         double vfov)
    : width_(width), height_(height), hfov_(hfov), vfov_(vfov) {
  FE_EXPECTS(width > 0 && height > 0);
  FE_EXPECTS(hfov > 0.0 && hfov <= 2.0 * util::kPi);
  FE_EXPECTS(vfov > 0.0 && vfov <= util::kPi);
}

util::Vec3 EquirectangularView::ray_for_pixel(util::Vec2 px) const {
  const double lon = (px.x / (width_ - 1) - 0.5) * hfov_;
  const double lat = (px.y / (height_ - 1) - 0.5) * vfov_;  // +down
  const double cl = std::cos(lat);
  return {std::sin(lon) * cl, std::sin(lat), std::cos(lon) * cl};
}

CylindricalView::CylindricalView(int width, int height, double hfov,
                                 double focal_px)
    : width_(width), height_(height), hfov_(hfov), focal_(focal_px) {
  FE_EXPECTS(width > 0 && height > 0 && focal_px > 0.0);
  FE_EXPECTS(hfov > 0.0 && hfov <= 2.0 * util::kPi);
}

util::Vec3 CylindricalView::ray_for_pixel(util::Vec2 px) const {
  const double lon = (px.x / (width_ - 1) - 0.5) * hfov_;
  const double v = (px.y - 0.5 * (height_ - 1)) / focal_;
  return {std::sin(lon), v, std::cos(lon)};
}

QuadView::QuadView(int width, int height, double fov, double tilt)
    : width_(width), height_(height), fov_(fov), tilt_(tilt) {
  FE_EXPECTS(width > 0 && height > 0);
  FE_EXPECTS(fov > 0.0 && fov < util::kPi);
  FE_EXPECTS(tilt >= 0.0 && tilt <= util::kHalfPi);
  if (width % 2 != 0 || height % 2 != 0)
    throw InvalidArgument("quadview: output dimensions must be even (got " +
                          std::to_string(width) + "x" +
                          std::to_string(height) + ")");
  quads_.reserve(4);
  for (int i = 0; i < 4; ++i)
    quads_.push_back(PerspectiveView::ptz(width / 2, height / 2,
                                          i * util::kHalfPi, tilt, fov));
}

util::Vec3 QuadView::ray_for_pixel(util::Vec2 px) const {
  // Quadrant layout (pan): top-left 0, top-right 90, bottom-left 180,
  // bottom-right 270 degrees.
  const double qw = width_ / 2;
  const double qh = height_ / 2;
  const int qx = px.x < qw ? 0 : 1;
  const int qy = px.y < qh ? 0 : 1;
  return quads_[static_cast<std::size_t>(qy * 2 + qx)].ray_for_pixel(
      {px.x - qx * qw, px.y - qy * qh});
}

const PerspectiveView& QuadView::quadrant(int index) const {
  FE_EXPECTS(index >= 0 && index < 4);
  return quads_[static_cast<std::size_t>(index)];
}

std::string QuadView::name() const {
  std::ostringstream os;
  os << "quadview:fov=" << util::rad_to_deg(fov_)
     << ",tilt=" << util::rad_to_deg(tilt_);
  return os.str();
}

}  // namespace fisheye::core
