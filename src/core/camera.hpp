// Fisheye camera = radial lens model + principal point.
//
// Converts between 3D viewing rays (camera frame: +Z forward, +X right,
// +Y down, matching image coordinates) and fisheye pixel coordinates.
#pragma once

#include <cstdint>
#include <memory>

#include "core/lens_model.hpp"
#include "util/matrix.hpp"

namespace fisheye::core {

struct LensSpec;

class FisheyeCamera {
 public:
  /// Takes shared ownership of the lens (cameras are copied into worker
  /// contexts; the immutable model is safely shared).
  FisheyeCamera(std::shared_ptr<const LensModel> lens, double cx, double cy);

  /// Convenience: build lens and camera together, principal point at the
  /// centre of a width x height sensor.
  static FisheyeCamera centered(LensKind kind, double fov_rad, int width,
                                int height);

  /// Same, from a parsed lens spec (core/model_spec.hpp) — the spec's
  /// parameters and field of view select and size the model.
  static FisheyeCamera centered(const LensSpec& lens, int width, int height);

  [[nodiscard]] const LensModel& lens() const noexcept { return *lens_; }
  [[nodiscard]] std::shared_ptr<const LensModel> lens_ptr() const noexcept {
    return lens_;
  }
  [[nodiscard]] double cx() const noexcept { return cx_; }
  [[nodiscard]] double cy() const noexcept { return cy_; }

  /// Construction identity (core/mapping.hpp's generation counter): plans
  /// that evaluate the camera on the fly key on this, so a recalibrated
  /// camera at a recycled address never aliases the old plan. Copies keep
  /// the stamp — a copy is the same calibration.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Project a camera-frame ray to a fisheye pixel. The ray need not be
  /// normalized. Rays beyond the lens' max_theta land outside the image
  /// circle by construction (radius saturates at max_theta's radius plus
  /// a gradient epsilon) so callers can simply bounds-test the result.
  [[nodiscard]] util::Vec2 project(util::Vec3 ray) const;

  /// Back-project a fisheye pixel to a unit camera-frame ray.
  [[nodiscard]] util::Vec3 unproject(util::Vec2 pixel) const;

 private:
  std::shared_ptr<const LensModel> lens_;
  double cx_;
  double cy_;
  std::uint64_t generation_;
};

}  // namespace fisheye::core
