// Output-view projections: how each *corrected* output pixel maps to a
// viewing ray in the fisheye camera's frame. Combining a ViewProjection
// with FisheyeCamera::project yields the inverse warp the remap kernels
// consume.
//
// Camera frame convention: +Z optical axis (forward), +X right, +Y down.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace fisheye::core {

/// Immutable, thread-safe pixel->ray mapping for an output view.
class ViewProjection {
 public:
  virtual ~ViewProjection() = default;

  /// Ray (not necessarily unit length) seen by output pixel (x, y).
  [[nodiscard]] virtual util::Vec3 ray_for_pixel(util::Vec2 px) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int width() const noexcept = 0;
  [[nodiscard]] virtual int height() const noexcept = 0;

  /// Construction identity (core/mapping.hpp's generation counter): plans
  /// that evaluate the view on the fly key on this, so a view rebuilt at a
  /// recycled address never aliases the old plan. Copies keep the stamp —
  /// a copy is the same logical view.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 protected:
  ViewProjection();

 private:
  std::uint64_t generation_;
};

/// Pinhole output view with an optional rotation — the workhorse both for
/// full-frame undistortion (identity rotation) and virtual pan-tilt-zoom.
class PerspectiveView final : public ViewProjection {
 public:
  /// `rotation` maps view-frame rays into the fisheye camera frame.
  PerspectiveView(int width, int height, double focal_px,
                  util::Mat3 rotation = util::Mat3::identity());

  /// Virtual PTZ factory: pan (+right, rad), tilt (+down), and horizontal
  /// field of view of the virtual camera.
  static PerspectiveView ptz(int width, int height, double pan, double tilt,
                             double hfov);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override { return "perspective"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }
  [[nodiscard]] double focal() const noexcept { return focal_; }

 private:
  int width_;
  int height_;
  double focal_;
  double cx_;
  double cy_;
  util::Mat3 rotation_;
};

/// Equirectangular (longitude/latitude) panorama covering +-hfov/2 by
/// +-vfov/2 around the optical axis.
class EquirectangularView final : public ViewProjection {
 public:
  EquirectangularView(int width, int height, double hfov, double vfov);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override { return "equirectangular"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }

 private:
  int width_;
  int height_;
  double hfov_;
  double vfov_;
};

/// Cylindrical panorama: longitude on x, perspective (tangent) on y. Keeps
/// verticals straight — the projection automotive surround views use.
class CylindricalView final : public ViewProjection {
 public:
  CylindricalView(int width, int height, double hfov, double focal_px);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override { return "cylindrical"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }

 private:
  int width_;
  int height_;
  double hfov_;
  double focal_;
};

/// Ceiling-mount quad dewarp (the ACAP scenario): the output frame is a
/// 2x2 grid of perspective sub-views panned 0/90/180/270 degrees around
/// the optical axis, each tilted `tilt` toward the horizon. One warp map
/// covers all four quadrants, so the hot path is a single remap.
class QuadView final : public ViewProjection {
 public:
  /// `width`/`height` must be even (four equal quadrants); `fov` is each
  /// quadrant's horizontal field of view, `tilt` the downward tilt.
  /// Throws InvalidArgument (user-facing geometry) on odd dimensions.
  QuadView(int width, int height, double fov, double tilt);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }
  /// The quadrant sub-view for pan index 0..3 (pan = index * 90 degrees).
  [[nodiscard]] const PerspectiveView& quadrant(int index) const;

 private:
  int width_;
  int height_;
  double fov_;
  double tilt_;
  std::vector<PerspectiveView> quads_;
};

}  // namespace fisheye::core
