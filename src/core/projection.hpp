// Output-view projections: how each *corrected* output pixel maps to a
// viewing ray in the fisheye camera's frame. Combining a ViewProjection
// with FisheyeCamera::project yields the inverse warp the remap kernels
// consume.
//
// Camera frame convention: +Z optical axis (forward), +X right, +Y down.
#pragma once

#include <memory>
#include <string>

#include "util/matrix.hpp"

namespace fisheye::core {

/// Immutable, thread-safe pixel->ray mapping for an output view.
class ViewProjection {
 public:
  virtual ~ViewProjection() = default;

  /// Ray (not necessarily unit length) seen by output pixel (x, y).
  [[nodiscard]] virtual util::Vec3 ray_for_pixel(util::Vec2 px) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int width() const noexcept = 0;
  [[nodiscard]] virtual int height() const noexcept = 0;
};

/// Pinhole output view with an optional rotation — the workhorse both for
/// full-frame undistortion (identity rotation) and virtual pan-tilt-zoom.
class PerspectiveView final : public ViewProjection {
 public:
  /// `rotation` maps view-frame rays into the fisheye camera frame.
  PerspectiveView(int width, int height, double focal_px,
                  util::Mat3 rotation = util::Mat3::identity());

  /// Virtual PTZ factory: pan (+right, rad), tilt (+down), and horizontal
  /// field of view of the virtual camera.
  static PerspectiveView ptz(int width, int height, double pan, double tilt,
                             double hfov);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override { return "perspective"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }
  [[nodiscard]] double focal() const noexcept { return focal_; }

 private:
  int width_;
  int height_;
  double focal_;
  double cx_;
  double cy_;
  util::Mat3 rotation_;
};

/// Equirectangular (longitude/latitude) panorama covering +-hfov/2 by
/// +-vfov/2 around the optical axis.
class EquirectangularView final : public ViewProjection {
 public:
  EquirectangularView(int width, int height, double hfov, double vfov);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override { return "equirectangular"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }

 private:
  int width_;
  int height_;
  double hfov_;
  double vfov_;
};

/// Cylindrical panorama: longitude on x, perspective (tangent) on y. Keeps
/// verticals straight — the projection automotive surround views use.
class CylindricalView final : public ViewProjection {
 public:
  CylindricalView(int width, int height, double hfov, double focal_px);

  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override;
  [[nodiscard]] std::string name() const override { return "cylindrical"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }

 private:
  int width_;
  int height_;
  double hfov_;
  double focal_;
};

}  // namespace fisheye::core
