#include "core/remap.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

namespace {

void expect_rect_in(const par::Rect& r, int width, int height) {
  FE_EXPECTS(r.x0 >= 0 && r.y0 >= 0 && r.x1 <= width && r.y1 <= height);
  FE_EXPECTS(!r.empty());
}

template <class SampleFn>
void remap_rect_generic(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst, const WarpMap& map,
                        par::Rect rect, int src_off_x, int src_off_y,
                        const RemapOptions& opts, SampleFn&& sample_fn) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  expect_rect_in(rect, dst.width, dst.height);

  const auto off_x = static_cast<float>(src_off_x);
  const auto off_y = static_cast<float>(src_off_y);
  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* out_row = dst.row(y);
    for (int x = rect.x0; x < rect.x1; ++x) {
      const float sx = map.src_x[row + x] - off_x;
      const float sy = map.src_y[row + x] - off_y;
      sample_fn(src, sx, sy, opts.border, opts.fill,
                out_row + static_cast<std::size_t>(x) * dst.channels);
    }
  }
}

}  // namespace

namespace detail {

void remap_rect_nearest(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst, const WarpMap& map,
                        par::Rect rect, int src_off_x, int src_off_y,
                        const RemapOptions& opts) {
  remap_rect_generic(src, dst, map, rect, src_off_x, src_off_y, opts,
                     [](auto&&... args) { sample_nearest(args...); });
}

void remap_rect_bilinear(img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst, const WarpMap& map,
                         par::Rect rect, int src_off_x, int src_off_y,
                         const RemapOptions& opts) {
  remap_rect_generic(src, dst, map, rect, src_off_x, src_off_y, opts,
                     [](auto&&... args) { sample_bilinear(args...); });
}

void remap_rect_bicubic(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst, const WarpMap& map,
                        par::Rect rect, int src_off_x, int src_off_y,
                        const RemapOptions& opts) {
  remap_rect_generic(src, dst, map, rect, src_off_x, src_off_y, opts,
                     [](auto&&... args) { sample_bicubic(args...); });
}

void remap_rect_lanczos3(img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst, const WarpMap& map,
                         par::Rect rect, int src_off_x, int src_off_y,
                         const RemapOptions& opts) {
  remap_rect_generic(src, dst, map, rect, src_off_x, src_off_y, opts,
                     [](auto&&... args) { sample_lanczos3(args...); });
}

}  // namespace detail

void remap_packed_rect_offset(img::ConstImageView<std::uint8_t> src,
                              img::ImageView<std::uint8_t> dst,
                              const PackedMap& map, par::Rect rect,
                              int src_off_x, int src_off_y, int src_width,
                              int src_height, std::uint8_t fill) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  expect_rect_in(rect, dst.width, dst.height);

  const int frac = map.frac_bits;
  // 8-bit blend weights: top 8 fractional bits (shift up if narrower).
  const int wshift = frac >= 8 ? frac - 8 : 0;
  const int wscale_up = frac >= 8 ? 0 : 8 - frac;
  const std::int32_t frac_mask = (std::int32_t{1} << frac) - 1;
  const int ch = src.channels;

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * map.width;
    std::uint8_t* out_row = dst.row(y);
    for (int x = rect.x0; x < rect.x1; ++x) {
      const std::int32_t fx = map.fx[row + x];
      std::uint8_t* out = out_row + static_cast<std::size_t>(x) * ch;
      if (fx == PackedMap::kInvalid) {
        for (int c = 0; c < ch; ++c) out[c] = fill;
        continue;
      }
      const std::int32_t fy = map.fy[row + x];
      const int x0 = fx >> frac;
      const int y0 = fy >> frac;
      const int ax = ((fx & frac_mask) >> wshift) << wscale_up;  // 0..256
      const int ay = ((fy & frac_mask) >> wshift) << wscale_up;
      // The +1 taps clamp against the FULL-frame dims the map was packed
      // for, not the window: the edge-pixel behaviour must not depend on
      // how the frame was tiled.
      const int x1 = x0 + 1 < src_width ? x0 + 1 : x0;
      const int y1 = y0 + 1 < src_height ? y0 + 1 : y0;
      const std::uint8_t* r0 = src.row(y0 - src_off_y);
      const std::uint8_t* r1 = src.row(y1 - src_off_y);
      const int lx0 = (x0 - src_off_x) * ch;
      const int lx1 = (x1 - src_off_x) * ch;
      const int w00 = (256 - ax) * (256 - ay);
      const int w10 = ax * (256 - ay);
      const int w01 = (256 - ax) * ay;
      const int w11 = ax * ay;
      for (int c = 0; c < ch; ++c) {
        const int v = w00 * r0[lx0 + c] + w10 * r0[lx1 + c] +
                      w01 * r1[lx0 + c] + w11 * r1[lx1 + c];
        out[c] = static_cast<std::uint8_t>((v + (1 << 15)) >> 16);
      }
    }
  }
}

void remap_packed_rect(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst, const PackedMap& map,
                       par::Rect rect, std::uint8_t fill) {
  remap_packed_rect_offset(src, dst, map, rect, 0, 0, src.width, src.height,
                           fill);
}

void remap_compact_rect_offset(img::ConstImageView<std::uint8_t> src,
                               img::ImageView<std::uint8_t> dst,
                               const CompactMap& map, par::Rect rect,
                               int src_off_x, int src_off_y,
                               std::uint8_t fill) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(map.width == dst.width && map.height == dst.height);
  expect_rect_in(rect, dst.width, dst.height);

  const int frac = map.frac_bits;
  const int wshift = frac >= 8 ? frac - 8 : 0;
  const int wscale_up = frac >= 8 ? 0 : 8 - frac;
  const std::int32_t frac_mask = (std::int32_t{1} << frac) - 1;
  const int ch = src.channels;

  const int shift = map.shift();
  const int smask = map.stride - 1;
  const std::int64_t s = map.stride;
  const int rshift = 2 * shift;
  const std::int64_t half =
      rshift > 0 ? (std::int64_t{1} << (rshift - 1)) : 0;
  const std::int32_t one = std::int32_t{1} << frac;
  const std::int32_t lim_x = static_cast<std::int32_t>(map.src_width) << frac;
  const std::int32_t lim_y = static_cast<std::int32_t>(map.src_height) << frac;
  const std::int32_t max_fx = lim_x - one;  // (src_width - 1) << frac
  const std::int32_t max_fy = lim_y - one;

  for (int y = rect.y0; y < rect.y1; ++y) {
    const std::int64_t ty = y & smask;
    const std::size_t g0 = static_cast<std::size_t>(y >> shift) * map.grid_w;
    const std::size_t g1 = g0 + map.grid_w;
    std::uint8_t* out_row = dst.row(y);
    int x = rect.x0;
    while (x < rect.x1) {
      const int cx = x >> shift;
      const int cell_end = std::min(rect.x1, (cx + 1) << shift);
      // Vertically interpolate the cell's two grid columns (scaled by
      // stride), then walk the row incrementally: each pixel is one add.
      const std::int64_t lx = map.gx[g0 + cx] * (s - ty) + map.gx[g1 + cx] * ty;
      const std::int64_t rx =
          map.gx[g0 + cx + 1] * (s - ty) + map.gx[g1 + cx + 1] * ty;
      const std::int64_t ly = map.gy[g0 + cx] * (s - ty) + map.gy[g1 + cx] * ty;
      const std::int64_t ry =
          map.gy[g0 + cx + 1] * (s - ty) + map.gy[g1 + cx + 1] * ty;
      const std::int64_t step_x = rx - lx;
      const std::int64_t step_y = ry - ly;
      std::int64_t acc_x = lx * s + (x & smask) * step_x;
      std::int64_t acc_y = ly * s + (x & smask) * step_y;
      for (; x < cell_end; ++x, acc_x += step_x, acc_y += step_y) {
        std::int32_t fx = static_cast<std::int32_t>((acc_x + half) >> rshift);
        std::int32_t fy = static_cast<std::int32_t>((acc_y + half) >> rshift);
        std::uint8_t* out = out_row + static_cast<std::size_t>(x) * ch;
        if (fx <= -one || fy <= -one || fx >= lim_x || fy >= lim_y) {
          for (int c = 0; c < ch; ++c) out[c] = fill;
          continue;
        }
        // Clamp into the sampling footprint, as pack_map does at build.
        fx = fx < 0 ? 0 : (fx > max_fx ? max_fx : fx);
        fy = fy < 0 ? 0 : (fy > max_fy ? max_fy : fy);
        const int x0 = fx >> frac;
        const int y0 = fy >> frac;
        const int ax = ((fx & frac_mask) >> wshift) << wscale_up;  // 0..256
        const int ay = ((fy & frac_mask) >> wshift) << wscale_up;
        const int x1 = x0 + 1 < map.src_width ? x0 + 1 : x0;
        const int y1 = y0 + 1 < map.src_height ? y0 + 1 : y0;
        const std::uint8_t* r0 = src.row(y0 - src_off_y);
        const std::uint8_t* r1 = src.row(y1 - src_off_y);
        const int lx0 = (x0 - src_off_x) * ch;
        const int lx1 = (x1 - src_off_x) * ch;
        const int w00 = (256 - ax) * (256 - ay);
        const int w10 = ax * (256 - ay);
        const int w01 = (256 - ax) * ay;
        const int w11 = ax * ay;
        for (int c = 0; c < ch; ++c) {
          const int v = w00 * r0[lx0 + c] + w10 * r0[lx1 + c] +
                        w01 * r1[lx0 + c] + w11 * r1[lx1 + c];
          out[c] = static_cast<std::uint8_t>((v + (1 << 15)) >> 16);
        }
      }
    }
  }
}

void remap_compact_rect(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const CompactMap& map, par::Rect rect,
                        std::uint8_t fill) {
  FE_EXPECTS(src.width == map.src_width && src.height == map.src_height);
  remap_compact_rect_offset(src, dst, map, rect, 0, 0, fill);
}

namespace {

/// Exact per-pixel inverse mapping (double precision, libm).
util::Vec2 project_exact(const FisheyeCamera& camera,
                         const ViewProjection& view, double x, double y) {
  return camera.project(view.ray_for_pixel({x, y}));
}

/// Fast-math variant: atan2/sin replaced by polynomial approximations.
util::Vec2 project_fast(const FisheyeCamera& camera,
                        const ViewProjection& view, double x, double y) {
  const util::Vec3 ray = view.ray_for_pixel({x, y});
  const double rxy = std::sqrt(ray.x * ray.x + ray.y * ray.y);
  if (rxy == 0.0) return {camera.cx(), camera.cy()};
  double theta = util::fast_atan2(rxy, ray.z);
  const LensModel& lens = camera.lens();
  const double tmax = lens.max_theta();
  double r;
  if (theta <= tmax) {
    r = lens.radius_from_theta(theta);
  } else {
    r = lens.radius_from_theta(tmax) + lens.focal() * (theta - tmax);
  }
  const double inv = r / rxy;
  return {camera.cx() + ray.x * inv, camera.cy() + ray.y * inv};
}

template <class SampleFn>
void remap_otf_generic(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const FisheyeCamera& camera, const ViewProjection& view,
                       par::Rect rect, const RemapOptions& opts,
                       bool fast_math, SampleFn&& sample_fn) {
  FE_EXPECTS(src.channels == dst.channels);
  FE_EXPECTS(view.width() == dst.width && view.height() == dst.height);
  expect_rect_in(rect, dst.width, dst.height);

  for (int y = rect.y0; y < rect.y1; ++y) {
    std::uint8_t* out_row = dst.row(y);
    for (int x = rect.x0; x < rect.x1; ++x) {
      const util::Vec2 s =
          fast_math ? project_fast(camera, view, x, y)
                    : project_exact(camera, view, x, y);
      sample_fn(src, static_cast<float>(s.x), static_cast<float>(s.y),
                opts.border, opts.fill,
                out_row + static_cast<std::size_t>(x) * dst.channels);
    }
  }
}

}  // namespace

namespace detail {

void remap_otf_nearest(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const FisheyeCamera& camera, const ViewProjection& view,
                       par::Rect rect, const RemapOptions& opts,
                       bool fast_math) {
  remap_otf_generic(src, dst, camera, view, rect, opts, fast_math,
                    [](auto&&... args) { sample_nearest(args...); });
}

void remap_otf_bilinear(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const FisheyeCamera& camera,
                        const ViewProjection& view, par::Rect rect,
                        const RemapOptions& opts, bool fast_math) {
  remap_otf_generic(src, dst, camera, view, rect, opts, fast_math,
                    [](auto&&... args) { sample_bilinear(args...); });
}

void remap_otf_bicubic(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const FisheyeCamera& camera, const ViewProjection& view,
                       par::Rect rect, const RemapOptions& opts,
                       bool fast_math) {
  remap_otf_generic(src, dst, camera, view, rect, opts, fast_math,
                    [](auto&&... args) { sample_bicubic(args...); });
}

void remap_otf_lanczos3(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const FisheyeCamera& camera,
                        const ViewProjection& view, par::Rect rect,
                        const RemapOptions& opts, bool fast_math) {
  remap_otf_generic(src, dst, camera, view, rect, opts, fast_math,
                    [](auto&&... args) { sample_lanczos3(args...); });
}

}  // namespace detail

}  // namespace fisheye::core
