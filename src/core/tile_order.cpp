#include "core/tile_order.hpp"

#include <utility>

#include "core/mapping.hpp"

namespace fisheye::core {

std::vector<par::Rect> source_locality_keys(
    const ExecContext& ctx, const std::vector<par::Rect>& tiles) {
  std::vector<par::Rect> keys;
  keys.reserve(tiles.size());
  switch (ctx.mode) {
    case MapMode::FloatLut:
      if (ctx.map != nullptr) {
        for (const par::Rect& t : tiles)
          keys.push_back(
              source_bbox(*ctx.map, t, ctx.src.width, ctx.src.height));
        return keys;
      }
      break;
    case MapMode::CompactLut:
      if (ctx.compact != nullptr) {
        for (const par::Rect& t : tiles)
          keys.push_back(source_bbox(*ctx.compact, t));
        return keys;
      }
      break;
    case MapMode::PackedLut:
    case MapMode::OnTheFly:
      break;
  }
  // No per-pixel source table to query: key on the output tiles. They are
  // never empty, so none get demoted to the fill tail.
  keys = tiles;
  return keys;
}

std::vector<par::Rect> order_tiles_by_source_locality(
    const ExecContext& ctx, std::vector<par::Rect> tiles) {
  const std::vector<par::Rect> keys = source_locality_keys(ctx, tiles);
  const std::vector<std::uint32_t> order = par::morton_order(keys);
  std::vector<par::Rect> out;
  out.reserve(tiles.size());
  for (const std::uint32_t i : order) out.push_back(tiles[i]);
  return out;
}

}  // namespace fisheye::core
