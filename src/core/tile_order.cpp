#include "core/tile_order.hpp"

#include <utility>

#include "core/mapping.hpp"

namespace fisheye::core {

// source_locality_keys lives in core/kernel.cpp: the per-representation
// source-extent query is part of the map-mode dispatch the kernel
// catalogue centralizes.

std::vector<par::Rect> order_tiles_by_source_locality(
    const ExecContext& ctx, std::vector<par::Rect> tiles) {
  const std::vector<par::Rect> keys = source_locality_keys(ctx, tiles);
  const std::vector<std::uint32_t> order = par::morton_order(keys);
  std::vector<par::Rect> out;
  out.reserve(tiles.size());
  for (const std::uint32_t i : order) out.push_back(tiles[i]);
  return out;
}

}  // namespace fisheye::core
