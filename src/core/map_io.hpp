// Warp-map serialization.
//
// Production deployments compute the LUT offline (calibration time) and
// load it at startup — embedded targets often cannot afford the double-
// precision trigonometry at all. Simple self-describing little-endian
// binary format:
//   magic "FEMAP1\n" | kind u8 | [provenance] | w i32 | h i32 |
//   kind-specific fields | payload
// Kinds 0 (float), 1 (packed), 2 (compact) are the legacy headerless
// forms; kinds 3/4/5 are the same representations with a provenance block
// after the kind byte: u16 lens-name length + bytes, u16 view-name length
// + bytes (the canonical LensSpec/ViewSpec names of the models the map was
// built from). Payload: float maps store src_x then src_y as f32; packed
// maps add frac_bits i32 and store fx then fy as i32; compact maps add
// stride i32, frac_bits i32, src_w i32, src_h i32, max_error f32,
// mean_error f32 and store the grid gx then gy as i32 (grid dimensions
// derive from w/h and stride). A trailing FNV-1a checksum of everything
// after the kind byte (so the provenance block too) guards against
// truncation and bit rot.
#pragma once

#include <string>

#include "core/mapping.hpp"

namespace fisheye::core {

/// Camera-model identity a serialized map was built from: the canonical
/// LensSpec::name() and ViewSpec::name() strings. Empty fields mean
/// "unknown" (legacy files, or a caller that doesn't care).
struct MapProvenance {
  std::string lens;
  std::string view;

  [[nodiscard]] bool operator==(const MapProvenance&) const = default;
};

void save_map(const std::string& path, const WarpMap& map);
void save_map(const std::string& path, const PackedMap& map);
void save_map(const std::string& path, const CompactMap& map);

/// Provenance-stamped save: writes kind 3/4/5 with the model names.
void save_map(const std::string& path, const WarpMap& map,
              const MapProvenance& prov);
void save_map(const std::string& path, const PackedMap& map,
              const MapProvenance& prov);
void save_map(const std::string& path, const CompactMap& map,
              const MapProvenance& prov);

/// Throws IoError on missing/corrupt/wrong-kind files. Each representation
/// accepts both its legacy kind and its provenance-stamped kind.
WarpMap load_map(const std::string& path);
PackedMap load_packed_map(const std::string& path);
CompactMap load_compact_map(const std::string& path);

/// Loads refusing a provenance mismatch: a file stamped with model names
/// differing from the non-empty fields of `expected` throws IoError naming
/// stored vs expected. Legacy (unstamped) files load unconditionally.
WarpMap load_map(const std::string& path, const MapProvenance& expected);
PackedMap load_packed_map(const std::string& path,
                          const MapProvenance& expected);
CompactMap load_compact_map(const std::string& path,
                            const MapProvenance& expected);

/// In-memory forms (used by tests and any transport other than files).
std::string encode_map(const WarpMap& map);
std::string encode_map(const PackedMap& map);
std::string encode_map(const CompactMap& map);
std::string encode_map(const WarpMap& map, const MapProvenance& prov);
std::string encode_map(const PackedMap& map, const MapProvenance& prov);
std::string encode_map(const CompactMap& map, const MapProvenance& prov);
WarpMap decode_map(const std::string& bytes);
PackedMap decode_packed_map(const std::string& bytes);
CompactMap decode_compact_map(const std::string& bytes);
WarpMap decode_map(const std::string& bytes, const MapProvenance& expected);
PackedMap decode_packed_map(const std::string& bytes,
                            const MapProvenance& expected);
CompactMap decode_compact_map(const std::string& bytes,
                              const MapProvenance& expected);

/// The provenance stored in `bytes` (empty fields for legacy kinds).
/// Throws IoError on corrupt envelopes, like the decoders.
MapProvenance decode_provenance(const std::string& bytes);

}  // namespace fisheye::core
