// Warp-map serialization.
//
// Production deployments compute the LUT offline (calibration time) and
// load it at startup — embedded targets often cannot afford the double-
// precision trigonometry at all. Simple self-describing little-endian
// binary format:
//   magic "FEMAP1\n" | kind u8 (0 float, 1 packed, 2 compact) | w i32 |
//   h i32 | kind-specific fields | payload
// Payload: float maps store src_x then src_y as f32; packed maps add
// frac_bits i32 and store fx then fy as i32; compact maps add stride i32,
// frac_bits i32, src_w i32, src_h i32, max_error f32, mean_error f32 and
// store the grid gx then gy as i32 (grid dimensions derive from w/h and
// stride). A trailing FNV-1a checksum of the payload guards against
// truncation and bit rot.
#pragma once

#include <string>

#include "core/mapping.hpp"

namespace fisheye::core {

void save_map(const std::string& path, const WarpMap& map);
void save_map(const std::string& path, const PackedMap& map);
void save_map(const std::string& path, const CompactMap& map);

/// Throws IoError on missing/corrupt/wrong-kind files.
WarpMap load_map(const std::string& path);
PackedMap load_packed_map(const std::string& path);
CompactMap load_compact_map(const std::string& path);

/// In-memory forms (used by tests and any transport other than files).
std::string encode_map(const WarpMap& map);
std::string encode_map(const PackedMap& map);
std::string encode_map(const CompactMap& map);
WarpMap decode_map(const std::string& bytes);
PackedMap decode_packed_map(const std::string& bytes);
CompactMap decode_compact_map(const std::string& bytes);

}  // namespace fisheye::core
