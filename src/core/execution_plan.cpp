#include "core/execution_plan.hpp"

#include <sstream>
#include <utility>

#include "core/camera.hpp"
#include "core/projection.hpp"
#include "simd/remap_simd.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"

namespace fisheye::core {

PlanKey plan_key(const ExecContext& ctx, std::string backend_name) {
  PlanKey k;
  k.backend = std::move(backend_name);
  k.src_width = ctx.src.width;
  k.src_height = ctx.src.height;
  k.channels = ctx.src.channels;
  k.dst_width = ctx.dst.width;
  k.dst_height = ctx.dst.height;
  k.mode = ctx.mode;
  k.interp = ctx.opts.interp;
  k.border = ctx.opts.border;
  k.fill = ctx.opts.fill;
  k.fast_math = ctx.fast_math;
  k.map = map_identity(ctx);
  FE_EXPECTS(k.map.present);
  if (ctx.camera != nullptr) k.lens = ctx.camera->lens().name();
  if (ctx.view != nullptr) k.view = ctx.view->name();
  return k;
}

ExecContext ConvertedMap::apply(ExecContext ctx) const noexcept {
  ctx.mode = mode;
  if (packed) ctx.packed = &*packed;
  if (compact) ctx.compact = &*compact;
  return ctx;
}

Workspace::Workspace() = default;
Workspace::~Workspace() = default;

ExecutionPlan::ExecutionPlan(PlanKey key, std::vector<par::Rect> tiles,
                             std::shared_ptr<void> state)
    : key_(std::move(key)),
      ws_(std::make_shared<Workspace>()),
      state_(std::move(state)),
      inst_(std::make_shared<PlanInstrumentation>()) {
  FE_EXPECTS(!tiles.empty());
  ws_->tiles = std::move(tiles);
  inst_->tile_seconds.reserve(ws_->tiles.size());
}

const std::vector<par::Rect>& ExecutionPlan::tiles() const noexcept {
  static const std::vector<par::Rect> kNone;
  return ws_ ? ws_->tiles : kNone;
}

bool ExecutionPlan::matches(const ExecContext& ctx,
                            std::string_view backend_name) const noexcept {
  if (!valid() || key_.backend != backend_name) return false;
  if (key_.src_width != ctx.src.width ||
      key_.src_height != ctx.src.height ||
      key_.channels != ctx.src.channels ||
      key_.dst_width != ctx.dst.width ||
      key_.dst_height != ctx.dst.height)
    return false;
  if (key_.mode != ctx.mode || key_.interp != ctx.opts.interp ||
      key_.border != ctx.opts.border || key_.fill != ctx.opts.fill ||
      key_.fast_math != ctx.fast_math)
    return false;
  const MapIdentity id = map_identity(ctx);
  return id.present && id == key_.map;
}

std::string ExecutionPlan::describe() const {
  if (!valid()) return "invalid plan";
  std::ostringstream os;
  os << key_.backend << ": " << key_.dst_width << 'x' << key_.dst_height
     << " in " << ws_->tiles.size()
     << (ws_->tiles.size() == 1 ? " tile" : " tiles");
  if (kernel_.valid())
    os << ", kernel " << map_mode_name(kernel_.key().mode) << " x "
       << interp_name(kernel_.key().interp) << " x "
       << variant_name(kernel_.key().variant);
  os << ", isa=" << util::cpu_info().isa();
  if (!key_.lens.empty()) os << ", lens=" << key_.lens;
  if (!key_.view.empty()) os << ", view=" << key_.view;
  if (inst_->transport_bytes != 0 || inst_->fallback_strips != 0 ||
      inst_->respawns != 0)
    os << ", shard[transport=" << inst_->transport_bytes / 1024
       << "KiB, fallbacks=" << inst_->fallback_strips
       << ", respawns=" << inst_->respawns << ']';
  return os.str();
}

rt::TileStats ExecutionPlan::tile_stats() const {
  FE_EXPECTS(valid());
  rt::TileStats t = rt::summarize_tiles(inst_->tile_seconds, inst_->bytes_in,
                                        inst_->bytes_out);
  t.local_tiles = inst_->local_tiles;
  t.stolen_tiles = inst_->stolen_tiles;
  t.steals = inst_->steals;
  t.transport_bytes = inst_->transport_bytes;
  t.fallback_strips = inst_->fallback_strips;
  t.respawns = inst_->respawns;
  return t;
}

}  // namespace fisheye::core
