#include "core/execution_plan.hpp"

#include <utility>

#include "util/error.hpp"

namespace fisheye::core {

PlanKey plan_key(const ExecContext& ctx, std::string backend_name) {
  PlanKey k;
  k.backend = std::move(backend_name);
  k.src_width = ctx.src.width;
  k.src_height = ctx.src.height;
  k.channels = ctx.src.channels;
  k.dst_width = ctx.dst.width;
  k.dst_height = ctx.dst.height;
  k.mode = ctx.mode;
  k.interp = ctx.opts.interp;
  k.border = ctx.opts.border;
  k.fill = ctx.opts.fill;
  k.fast_math = ctx.fast_math;
  switch (ctx.mode) {
    case MapMode::FloatLut:
      FE_EXPECTS(ctx.map != nullptr);
      k.map = ctx.map;
      k.map_generation = ctx.map->generation;
      k.map_width = ctx.map->width;
      k.map_height = ctx.map->height;
      break;
    case MapMode::PackedLut:
      FE_EXPECTS(ctx.packed != nullptr);
      k.map = ctx.packed;
      k.map_generation = ctx.packed->generation;
      k.map_width = ctx.packed->width;
      k.map_height = ctx.packed->height;
      break;
    case MapMode::CompactLut:
      FE_EXPECTS(ctx.compact != nullptr);
      k.map = ctx.compact;
      k.map_generation = ctx.compact->generation;
      k.map_width = ctx.compact->width;
      k.map_height = ctx.compact->height;
      k.map_stride = ctx.compact->stride;
      break;
    case MapMode::OnTheFly:
      k.camera = ctx.camera;
      k.view = ctx.view;
      break;
  }
  return k;
}

ExecContext ConvertedMap::apply(ExecContext ctx) const noexcept {
  ctx.mode = mode;
  if (packed) ctx.packed = &*packed;
  if (compact) ctx.compact = &*compact;
  return ctx;
}

std::size_t estimate_bytes_in(const ExecContext& ctx) noexcept {
  const std::size_t px = static_cast<std::size_t>(ctx.dst.width) *
                         static_cast<std::size_t>(ctx.dst.height);
  const std::size_t ch = static_cast<std::size_t>(ctx.src.channels);
  std::size_t lut = 0;
  switch (ctx.mode) {
    case MapMode::FloatLut: lut = px * 2 * sizeof(float); break;
    case MapMode::PackedLut: lut = px * 2 * sizeof(std::int32_t); break;
    case MapMode::CompactLut:
      // The whole grid is streamed once per frame, not 8 bytes per pixel —
      // the bandwidth win the compact representation exists for.
      lut = ctx.compact != nullptr ? ctx.compact->bytes() : 0;
      break;
    case MapMode::OnTheFly: lut = 0; break;
  }
  // Bilinear reads up to four taps per pixel per channel; nearest one.
  const std::size_t taps = ctx.opts.interp == Interp::Bilinear ? 4 : 1;
  return lut + px * ch * taps;
}

std::size_t estimate_bytes_out(const ExecContext& ctx) noexcept {
  return static_cast<std::size_t>(ctx.dst.width) *
         static_cast<std::size_t>(ctx.dst.height) *
         static_cast<std::size_t>(ctx.src.channels);
}

ExecutionPlan::ExecutionPlan(PlanKey key, std::vector<par::Rect> tiles,
                             std::shared_ptr<void> state)
    : key_(std::move(key)),
      tiles_(std::move(tiles)),
      state_(std::move(state)),
      inst_(std::make_shared<PlanInstrumentation>()) {
  FE_EXPECTS(!tiles_.empty());
  inst_->tile_seconds.reserve(tiles_.size());
}

bool ExecutionPlan::matches(const ExecContext& ctx,
                            std::string_view backend_name) const noexcept {
  if (!valid() || key_.backend != backend_name) return false;
  if (key_.src_width != ctx.src.width ||
      key_.src_height != ctx.src.height ||
      key_.channels != ctx.src.channels ||
      key_.dst_width != ctx.dst.width ||
      key_.dst_height != ctx.dst.height)
    return false;
  if (key_.mode != ctx.mode || key_.interp != ctx.opts.interp ||
      key_.border != ctx.opts.border || key_.fill != ctx.opts.fill ||
      key_.fast_math != ctx.fast_math)
    return false;
  switch (ctx.mode) {
    case MapMode::FloatLut:
      return ctx.map != nullptr && key_.map == ctx.map &&
             key_.map_generation == ctx.map->generation &&
             key_.map_width == ctx.map->width &&
             key_.map_height == ctx.map->height;
    case MapMode::PackedLut:
      return ctx.packed != nullptr && key_.map == ctx.packed &&
             key_.map_generation == ctx.packed->generation &&
             key_.map_width == ctx.packed->width &&
             key_.map_height == ctx.packed->height;
    case MapMode::CompactLut:
      return ctx.compact != nullptr && key_.map == ctx.compact &&
             key_.map_generation == ctx.compact->generation &&
             key_.map_width == ctx.compact->width &&
             key_.map_height == ctx.compact->height &&
             key_.map_stride == ctx.compact->stride;
    case MapMode::OnTheFly:
      return key_.camera == ctx.camera && key_.view == ctx.view;
  }
  return false;
}

rt::TileStats ExecutionPlan::tile_stats() const {
  FE_EXPECTS(valid());
  rt::TileStats t = rt::summarize_tiles(inst_->tile_seconds, inst_->bytes_in,
                                        inst_->bytes_out);
  t.local_tiles = inst_->local_tiles;
  t.stolen_tiles = inst_->stolen_tiles;
  t.steals = inst_->steals;
  return t;
}

}  // namespace fisheye::core
