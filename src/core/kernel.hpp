// Tile-kernel registry: the library's single dispatch point.
//
// The study's premise is one remap kernel ported across many platforms;
// the registry makes that literal. A KernelKey names a point in the
// (map representation × interpolation × border policy × pixel layout ×
// variant) lattice; the catalogue maps each supported point to a
// TileKernel — a plain function that produces one output rectangle.
// resolve_kernel() performs the lookup ONCE, at plan time, and returns a
// ResolvedKernel: the function pointer plus a KernelBinding capturing the
// frame-invariant operands (map tables, camera, full-frame source
// dimensions, sampling options). Every backend's execute path is then
// "for each tile, call plan.kernel()(src, dst, rect)" — zero per-frame
// branching on representation or interpolation.
//
// This header is the only place a new kernel variant (a new map kind, a
// pixel format, a vector ISA) has to be registered; backends pick it up
// through plan-time resolution without touching their execute paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/remap.hpp"
#include "image/border.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"

namespace fisheye::simd {
struct SoaScratch;
}  // namespace fisheye::simd

namespace fisheye::core {

struct ExecContext;

/// How source coordinates are obtained per output pixel.
enum class MapMode {
  FloatLut,    ///< precomputed float WarpMap
  PackedLut,   ///< precomputed fixed-point PackedMap (bilinear only)
  CompactLut,  ///< block-subsampled CompactMap, reconstructed per pixel
               ///< (bilinear only)
  OnTheFly,    ///< recomputed per pixel from camera + view
};

[[nodiscard]] constexpr const char* map_mode_name(MapMode m) noexcept {
  switch (m) {
    case MapMode::FloatLut: return "float-lut";
    case MapMode::PackedLut: return "packed-lut";
    case MapMode::CompactLut: return "compact-lut";
    case MapMode::OnTheFly: return "on-the-fly";
  }
  return "?";
}

/// Memory layout of the pixel samples a kernel reads and writes. One point
/// today; planar YUV and u16 land here as new kernels, not new backends.
enum class PixelLayout : std::uint8_t {
  InterleavedU8,  ///< channels interleaved, 8 bits per sample
};

/// Which implementation family executes the tile.
enum class KernelVariant : std::uint8_t {
  Scalar,      ///< portable per-pixel kernels (core/remap.cpp)
  SimdSoa,     ///< two-pass SoA strip kernels (simd/remap_simd.cpp)
  SimdGather,  ///< AVX2 hardware-gather pass 2 (simd/remap_gather.cpp)
};

[[nodiscard]] constexpr const char* variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::Scalar: return "scalar";
    case KernelVariant::SimdSoa: return "simd-soa";
    case KernelVariant::SimdGather: return "simd-gather";
  }
  return "?";
}

/// A point in the kernel lattice; what resolve_kernel() looks up.
struct KernelKey {
  MapMode mode = MapMode::FloatLut;
  Interp interp = Interp::Bilinear;
  img::BorderMode border = img::BorderMode::Constant;
  PixelLayout layout = PixelLayout::InterleavedU8;
  KernelVariant variant = KernelVariant::Scalar;

  [[nodiscard]] bool operator==(const KernelKey&) const noexcept = default;
};

/// Frame-invariant operands captured at plan time. Which pointers are
/// non-null depends on the key's map mode; all referenced objects must
/// outlive the plan (ExecutionPlan pins spec-converted maps itself).
struct KernelBinding {
  const WarpMap* map = nullptr;
  const PackedMap* packed = nullptr;
  const CompactMap* compact = nullptr;
  const FisheyeCamera* camera = nullptr;
  const ViewProjection* view = nullptr;
  /// Full-frame source dimensions: windowed kernels clamp taps against
  /// these, not against the (smaller) window view they are handed.
  int src_width = 0;
  int src_height = 0;
  RemapOptions opts;
  bool fast_math = false;
  /// SoA/gather strip length in pixels (0 = simd::kSoaStrip); a plan-time
  /// tuning knob — the scratch arrays bound it, so kernels clamp.
  int soa_strip = 0;
};

/// Per-call operands: the frame's pixel views, the output rectangle, and —
/// for windowed execution — where the source window sits in the full frame.
struct TileArgs {
  img::ConstImageView<std::uint8_t> src;
  img::ImageView<std::uint8_t> dst;
  par::Rect rect{};
  int src_off_x = 0;
  int src_off_y = 0;
  /// SoA strip scratch for SimdSoa kernels; null = per-call stack scratch.
  simd::SoaScratch* scratch = nullptr;
};

using TileKernelFn = void (*)(const KernelBinding&, const TileArgs&);

/// The plan-time resolution result: one function pointer plus its bound
/// operands. Cheap to copy; invoke per tile with zero branching.
class ResolvedKernel {
 public:
  ResolvedKernel() = default;  ///< invalid; valid() == false

  ResolvedKernel(KernelKey key, TileKernelFn fn, KernelBinding binding,
                 bool windowed) noexcept
      : key_(key), binding_(binding), fn_(fn), windowed_(windowed) {}

  [[nodiscard]] bool valid() const noexcept { return fn_ != nullptr; }
  [[nodiscard]] const KernelKey& key() const noexcept { return key_; }
  [[nodiscard]] const KernelBinding& binding() const noexcept {
    return binding_;
  }
  /// True when the kernel accepts a source window + full-frame offset
  /// (the accelerator local-store and cluster scatter paths need this).
  [[nodiscard]] bool windowed() const noexcept { return windowed_; }

  /// Execute one tile: `src` is the full source frame, `rect` a rectangle
  /// of `dst`.
  void operator()(img::ConstImageView<std::uint8_t> src,
                  img::ImageView<std::uint8_t> dst, par::Rect rect,
                  simd::SoaScratch* scratch = nullptr) const {
    fn_(binding_, TileArgs{src, dst, rect, 0, 0, scratch});
  }

  /// Windowed execution: `src` is a copied sub-window of the real source
  /// whose top-left corner sits at (src_off_x, src_off_y) in full-frame
  /// coordinates. Requires windowed().
  void run_windowed(img::ConstImageView<std::uint8_t> src,
                    img::ImageView<std::uint8_t> dst, par::Rect rect,
                    int src_off_x, int src_off_y) const;

 private:
  KernelKey key_;
  KernelBinding binding_;
  TileKernelFn fn_ = nullptr;
  bool windowed_ = false;
};

/// Runtime-feasible variant for `ctx`: SimdGather degrades to SimdSoa
/// (when catalogued for the context's key) or Scalar when the gather
/// datapath is unavailable here (not compiled in, CPU lacks AVX2, or
/// FISHEYE_FORCE_SCALAR is set); FISHEYE_FORCE_SCALAR degrades every SIMD
/// variant to Scalar. Capability mismatches (an interpolation or border
/// the variant never supports) are NOT degraded — resolve_kernel still
/// throws for those, so misconfiguration stays loud.
[[nodiscard]] KernelVariant effective_variant(const ExecContext& ctx,
                                              KernelVariant wanted) noexcept;

/// Look up the kernel for `ctx` and bind its frame-invariant operands.
/// `variant` is first passed through effective_variant(); `soa_strip`
/// (0 = default) is bound for the SoA/gather strip kernels. Throws
/// InvalidArgument (naming the unsupported combination) when the catalogue
/// has no kernel for the context's key.
[[nodiscard]] ResolvedKernel resolve_kernel(
    const ExecContext& ctx, KernelVariant variant = KernelVariant::Scalar,
    int soa_strip = 0);

/// True when the catalogue has a kernel for `key`.
[[nodiscard]] bool kernel_supported(const KernelKey& key) noexcept;

/// Human-readable list of every registered kernel, one per line — the
/// lattice points the library implements (help text, error messages).
[[nodiscard]] std::string kernel_catalogue();

/// Identity of the coordinate source a context executes from: table address
/// + generation + dimensions (generation defeats address recycling), or the
/// camera/view pair for on-the-fly evaluation. Plan keys compare these so
/// the per-mode identity logic lives with the kernel catalogue.
struct MapIdentity {
  const void* table = nullptr;
  std::uint64_t generation = 0;
  int width = 0;
  int height = 0;
  /// Grid pitch for CompactLut (0 otherwise): plans built for different
  /// subsampling strides are never interchangeable.
  int stride = 0;
  const void* camera = nullptr;
  const void* view = nullptr;
  /// Construction identity of the camera/view pair for OnTheFly mode
  /// (FisheyeCamera::generation / ViewProjection::generation): a
  /// recalibrated camera or rebuilt view landing at a recycled address
  /// must not alias the old plan, exactly like the table generations.
  std::uint64_t camera_gen = 0;
  std::uint64_t view_gen = 0;
  /// False when the context lacks the representation its mode names.
  bool present = false;

  [[nodiscard]] bool operator==(const MapIdentity&) const noexcept = default;
};

[[nodiscard]] MapIdentity map_identity(const ExecContext& ctx) noexcept;

/// Per-pixel sampling function resolved from an Interp once, outside the
/// pixel loop (the environment renderer and other non-remap samplers).
using SampleFn = void (*)(img::ConstImageView<std::uint8_t>, float, float,
                          img::BorderMode, std::uint8_t, std::uint8_t*);

[[nodiscard]] SampleFn sample_kernel(Interp interp);

}  // namespace fisheye::core
