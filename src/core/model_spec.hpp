// Spec-resolvable camera models: the lens and output-view counterparts of
// the backend spec grammar (core/backend_registry.hpp).
//
// A lens spec is `lens=<kind>[:option,...]` (the `lens=` prefix is
// optional) where kind is one of the seven LensKinds and the options are
// the model's calibration parameters plus the field of view:
//
//   lens=equidistant                     the study's default, 180 degrees
//   lens=equisolid:fov=160
//   lens=kannala_brandt:k1=-0.02,k2=0.002,k3=0,k4=0
//   lens=division:lambda=-0.25,fov=160
//
// A view spec is `view=<kind>[:option,...]` selecting the output
// projection the warp map targets:
//
//   view=perspective                     rectilinear undistortion (default)
//   view=perspective:fov=90              fixed-hfov virtual camera
//   view=cylindrical:hfov=180
//   view=equirect:hfov=180,vfov=90
//   view=quadview:fov=90,tilt=40         ceiling-mount 4x dewarp
//
// Both ride BackendSpec: parsed by name, range-checked with the offending
// token in the message, and round-trippable through the canonical name()
// (`parse(s.name()).name() == s.name()`). Because warp maps are
// precomputed, every model resolves to the same hot path — a spec only
// changes what the map builder evaluates at plan time.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/lens_model.hpp"
#include "core/projection.hpp"

namespace fisheye::core {

/// Parsed, validated lens identity: kind + calibration parameters + field
/// of view. Implicitly convertible from LensKind so existing
/// `config.lens = LensKind::X` call sites keep compiling.
struct LensSpec {
  LensKind kind = LensKind::Equidistant;
  /// Kannala-Brandt k1..k4 (ignored by other kinds).
  std::array<double, 4> k{-0.02, 0.002, 0.0, 0.0};
  /// Division lambda (ignored by other kinds).
  double lambda = -0.25;
  /// Full field of view, degrees. Defaults to 180 except for the division
  /// model, whose inverse saturates just short of 180 — its default is 160
  /// (the paper-typical wide-angle setup). name() omits the kind's default.
  double fov_deg = 180.0;

  LensSpec() = default;
  /// Deliberately implicit: a bare LensKind is the kind's default spec.
  LensSpec(LensKind kind_);  // NOLINT(runtime/explicit)

  /// Parse `lens=<kind>[:...]` (or the same without the prefix). Throws
  /// InvalidArgument naming the offending token for unknown kinds, unknown
  /// or inapplicable options (k1 on a non-KB lens), malformed values, and
  /// out-of-range numbers.
  static LensSpec parse(const std::string& text);

  /// Canonical spec (no `lens=` prefix): kind, then the kind's parameters,
  /// then `fov=` when not the 180-degree default. parse(name()) is the
  /// identity on the canonical form.
  [[nodiscard]] std::string name() const;

  [[nodiscard]] double fov_rad() const noexcept;

  /// Instantiate the model at `focal_px`.
  [[nodiscard]] std::unique_ptr<LensModel> make(double focal_px) const;

  /// Focal length (pixels) such that this spec's lens images its field of
  /// view onto an image circle of `circle_radius_px` (focal_for_fov for
  /// parameterized kinds). Throws InvalidArgument when fov/2 exceeds the
  /// model's usable domain.
  [[nodiscard]] double focal_for_circle(double circle_radius_px) const;

  [[nodiscard]] bool operator==(const LensSpec&) const = default;
};

enum class ViewKind {
  Perspective,
  Cylindrical,
  Equirect,
  QuadView,
};

[[nodiscard]] const char* view_kind_name(ViewKind kind) noexcept;

/// Parsed, validated output-view identity.
struct ViewSpec {
  ViewKind kind = ViewKind::Perspective;
  /// Perspective/QuadView horizontal field of view, degrees; 0 on a
  /// perspective view means "use the caller's focal" (the corrector's
  /// out_focal, preserving centre-of-image resolution).
  double fov_deg = 0.0;
  double hfov_deg = 180.0;  ///< cylindrical/equirect longitude span
  double vfov_deg = 90.0;   ///< equirect latitude span
  double tilt_deg = 40.0;   ///< quadview downward tilt per quadrant

  ViewSpec() = default;
  /// Deliberately implicit, mirroring LensSpec(LensKind).
  ViewSpec(ViewKind kind_);  // NOLINT(runtime/explicit)

  /// Parse `view=<kind>[:...]` (or the same without the prefix); same
  /// error contract as LensSpec::parse.
  static ViewSpec parse(const std::string& text);

  /// Canonical spec (no `view=` prefix); parse(name()) is the identity.
  [[nodiscard]] std::string name() const;

  /// Instantiate the projection for a `width` x `height` output.
  /// `focal_px` seeds perspective views without a fov= option and the
  /// cylindrical vertical scale; fov-specified kinds ignore it. QuadView
  /// requires even output dimensions (four equal quadrants).
  [[nodiscard]] std::unique_ptr<ViewProjection> make(int width, int height,
                                                     double focal_px) const;

  [[nodiscard]] bool operator==(const ViewSpec&) const = default;
};

}  // namespace fisheye::core
