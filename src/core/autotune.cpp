#include "core/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <utility>

#include "core/camera.hpp"
#include "core/projection.hpp"
#include "runtime/timer.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"

namespace fisheye::core {

namespace {

const char* cache_file() {
  const char* path = std::getenv("FISHEYE_TUNE_CACHE");
  return (path != nullptr && path[0] != '\0') ? path : nullptr;
}

/// First line of every cache file. A file that does not start with exactly
/// this token — older format, different tool, truncation that ate the
/// header, binary garbage — is ignored wholesale and rewritten on the next
/// store(); decisions are cheap to re-measure and must never be poisoned.
constexpr const char* kDiskFormatTag = "fisheye-tune-cache/1";

}  // namespace

AutotuneCache& AutotuneCache::instance() {
  static AutotuneCache cache;
  return cache;
}

void AutotuneCache::load_disk_locked() {
  if (disk_loaded_) return;
  disk_loaded_ = true;
  const char* path = cache_file();
  if (path == nullptr) return;
  std::ifstream in(path);
  std::string line;
  if (!std::getline(in, line) || line != kDiskFormatTag) return;
  while (std::getline(in, line)) {
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) continue;
    try {
      entries_.insert_or_assign(line.substr(0, tab),
                                TunedSpec::parse(line.substr(tab + 1)));
    } catch (const std::exception&) {
      // A hand-edited, truncated, or stale line never breaks tuning — the
      // decision is simply re-measured. std::exception, not just
      // InvalidArgument: numeric parsing throws std:: types too.
    }
  }
}

std::optional<TunedSpec> AutotuneCache::lookup(const std::string& key) {
  const std::scoped_lock lock(mu_);
  load_disk_locked();
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void AutotuneCache::store(const std::string& key, const TunedSpec& spec) {
  const std::scoped_lock lock(mu_);
  load_disk_locked();
  entries_.insert_or_assign(key, spec);
  ++stats_.stores;
  if (const char* path = cache_file()) {
    // Rewrite the whole file: it holds a handful of lines and rewriting
    // keeps it free of superseded duplicates (and repairs any corrupt or
    // version-skewed file the load pass ignored).
    std::ofstream out(path, std::ios::trunc);
    out << kDiskFormatTag << '\n';
    for (const auto& [k, v] : entries_) out << k << '\t' << v.token() << '\n';
  }
}

void AutotuneCache::reload_disk() {
  const std::scoped_lock lock(mu_);
  entries_.clear();
  stats_ = Stats{};
  disk_loaded_ = false;
  load_disk_locked();
}

void AutotuneCache::clear() {
  const std::scoped_lock lock(mu_);
  entries_.clear();
  stats_ = Stats{};
  // Keep disk_loaded_: clear() means "forget decisions", not "reload".
}

AutotuneCache::Stats AutotuneCache::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::string autotune_cache_key(const ExecContext& ctx,
                               const std::string& base_spec) {
  std::string key = util::cpu_info().isa();
  key += '|';
  key += std::to_string(ctx.src.width) + 'x' + std::to_string(ctx.src.height) +
         'c' + std::to_string(ctx.src.channels);
  key += "->";
  key += std::to_string(ctx.dst.width) + 'x' + std::to_string(ctx.dst.height);
  key += '|';
  key += map_mode_name(ctx.mode);
  // Lens/view model identity: tuned decisions for one camera model must not
  // be replayed for another — the on-the-fly datapath's cost depends on the
  // model's inversion, and even LUT-mode maps differ in access pattern.
  if (ctx.camera != nullptr) {
    key += '|';
    key += ctx.camera->lens().name();
  }
  if (ctx.view != nullptr) {
    key += '|';
    key += ctx.view->name();
  }
  key += '|';
  key += base_spec;
  return key;
}

std::optional<TunedSpec> autotune_select(
    const ExecContext& ctx, const std::string& cache_key,
    const std::vector<AutotuneCandidate>& candidates,
    const AutotunePlanFn& plan_fn, const AutotuneExecFn& exec_fn, int warmup,
    int frames) {
  if (candidates.empty()) return std::nullopt;
  if (auto cached = AutotuneCache::instance().lookup(cache_key)) return cached;

  // Synthesized measurement frames: the caller's views may be null at plan
  // time, and probing must never write a caller's real output frame. A
  // diagonal gradient keeps the gathers on realistic (non-constant)
  // addresses without costing a map evaluation.
  img::Image8 src(ctx.src.width, ctx.src.height, ctx.src.channels);
  img::Image8 dst(ctx.dst.width, ctx.dst.height, ctx.src.channels);
  for (int y = 0; y < src.height(); ++y) {
    std::uint8_t* row = src.row(y);
    const std::size_t n =
        static_cast<std::size_t>(src.width()) * src.channels();
    for (std::size_t i = 0; i < n; ++i)
      row[i] = static_cast<std::uint8_t>((i + static_cast<std::size_t>(y)) &
                                         0xFF);
  }
  ExecContext mctx = ctx;
  mctx.src = src.cview();
  mctx.dst = dst.view();

  struct Scored {
    TunedSpec spec;
    ExecutionPlan plan;
    double seconds = std::numeric_limits<double>::infinity();
  };
  const auto probe = [&](Scored& s, int n) {
    for (int i = 0; i < n; ++i) {
      const rt::Stopwatch sw;
      exec_fn(s.plan, mctx);
      s.seconds = std::min(s.seconds, sw.elapsed_seconds());
    }
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const AutotuneCandidate& cand : candidates) {
    Scored s;
    s.spec = cand.spec;
    try {
      s.plan = plan_fn(mctx, cand.spec);
      for (int i = 0; i < warmup; ++i) exec_fn(s.plan, mctx);
      probe(s, frames);
    } catch (const std::exception&) {
      continue;  // infeasible candidate (unsupported kernel point, ...)
    }
    scored.push_back(std::move(s));
  }
  if (scored.empty()) return std::nullopt;
  // Runoff between the top two: a single preemption spike during a
  // candidate's probe window is enough to crown the wrong winner, and a
  // wrong lock-in is paid on every subsequent frame. Re-probing only the
  // finalists keeps total probe cost ~O(candidates), not 2x.
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.seconds < b.seconds;
            });
  const std::size_t finalists = std::min<std::size_t>(2, scored.size());
  for (std::size_t i = 0; i < finalists; ++i) {
    try {
      probe(scored[i], frames);
    } catch (const std::exception&) {
      scored[i].seconds = std::numeric_limits<double>::infinity();
    }
  }
  const auto winner = std::min_element(
      scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(finalists),
      [](const Scored& a, const Scored& b) { return a.seconds < b.seconds; });
  if (!std::isfinite(winner->seconds)) return std::nullopt;
  AutotuneCache::instance().store(cache_key, winner->spec);
  return winner->spec;
}

}  // namespace fisheye::core
