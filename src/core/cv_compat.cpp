#include "core/cv_compat.hpp"

#include <cmath>

#include "core/execution_plan.hpp"
#include "core/kernel.hpp"
#include "core/lens_model.hpp"
#include "util/error.hpp"

namespace fisheye::cv_compat {

double kannala_brandt_theta(double theta, const std::array<double, 4>& d) {
  // The polynomial lives with the KannalaBrandt lens model; this wrapper
  // only preserves the OpenCV-shaped entry point.
  return core::KannalaBrandt::distort_theta(theta, d);
}

core::WarpMap init_undistort_rectify_map(const CameraMatrix& k,
                                         const std::array<double, 4>& d,
                                         const CameraMatrix& p, int out_w,
                                         int out_h) {
  FE_EXPECTS(k.fx > 0.0 && k.fy > 0.0 && p.fx > 0.0 && p.fy > 0.0);
  FE_EXPECTS(out_w > 0 && out_h > 0);
  core::WarpMap map;
  map.width = out_w;
  map.height = out_h;
  map.src_x.resize(map.pixel_count());
  map.src_y.resize(map.pixel_count());
  for (int y = 0; y < out_h; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * out_w;
    for (int x = 0; x < out_w; ++x) {
      // Undistorted normalized coordinates through P^-1 (R = identity).
      const double ax = (x - p.cx) / p.fx;
      const double ay = (y - p.cy) / p.fy;
      const double r = std::hypot(ax, ay);
      const double theta = std::atan(r);
      const double theta_d = kannala_brandt_theta(theta, d);
      const double scale = r > 1e-12 ? theta_d / r : 1.0;
      map.src_x[row + x] = static_cast<float>(k.fx * ax * scale + k.cx);
      map.src_y[row + x] = static_cast<float>(k.fy * ay * scale + k.cy);
    }
  }
  return map;
}

void remap(img::ConstImageView<std::uint8_t> src,
           img::ImageView<std::uint8_t> dst, const core::WarpMap& map,
           core::Interp interp, img::BorderMode border,
           std::uint8_t border_value) {
  core::ExecContext ctx;
  ctx.src = src;
  ctx.dst = dst;
  ctx.map = &map;
  ctx.mode = core::MapMode::FloatLut;
  ctx.opts = {interp, border, border_value};
  core::resolve_kernel(ctx)(src, dst, {0, 0, dst.width, dst.height});
}

}  // namespace fisheye::cv_compat
