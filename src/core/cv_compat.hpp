// OpenCV-compatible entry points.
//
// The ubiquitous fisheye pipeline is cv::fisheye::initUndistortRectifyMap +
// cv::remap. This shim exposes the same semantics (including OpenCV's
// Kannala-Brandt theta-polynomial distortion model, of which the pure
// equidistant lens is the k=0 special case) on this library's types, so
// downstream code and tests can be ported by changing includes only.
#pragma once

#include <array>

#include "core/interp.hpp"
#include "core/mapping.hpp"
#include "image/border.hpp"
#include "image/image.hpp"

namespace fisheye::cv_compat {

/// 3x3 intrinsic matrix in OpenCV layout, reduced to its used entries
/// (fx, fy, cx, cy; skew unsupported).
struct CameraMatrix {
  double fx = 0.0;
  double fy = 0.0;
  double cx = 0.0;
  double cy = 0.0;
};

/// Kannala-Brandt forward distortion: theta_d = theta * (1 + k1 theta^2 +
/// k2 theta^4 + k3 theta^6 + k4 theta^8). Exposed for tests.
double kannala_brandt_theta(double theta, const std::array<double, 4>& d);

/// cv::fisheye::initUndistortRectifyMap (R = identity): build the inverse
/// map from the undistorted camera `p` (size out_w x out_h) into the
/// fisheye image described by `k` and distortion `d`.
core::WarpMap init_undistort_rectify_map(const CameraMatrix& k,
                                         const std::array<double, 4>& d,
                                         const CameraMatrix& p, int out_w,
                                         int out_h);

/// cv::remap with INTER_* and BORDER_CONSTANT/REPLICATE/REFLECT semantics.
void remap(img::ConstImageView<std::uint8_t> src,
           img::ImageView<std::uint8_t> dst, const core::WarpMap& map,
           core::Interp interp = core::Interp::Bilinear,
           img::BorderMode border = img::BorderMode::Constant,
           std::uint8_t border_value = 0);

}  // namespace fisheye::cv_compat
