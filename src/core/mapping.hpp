// Warp maps: the per-output-pixel source coordinates that drive remapping.
//
// Two representations, matching the two execution strategies the study
// compares (F3/F9):
//  * WarpMap     — float32 source coordinates in structure-of-arrays layout
//                  (SIMD-friendly; generated once per configuration).
//  * PackedMap   — fixed-point Q(31-frac).frac coordinates in one int32 pair
//                  per pixel, the format a LUT-driven hardware datapath
//                  streams; invalid (out-of-source) pixels are a sentinel.
//
// Generation is exact double-precision math regardless of representation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/camera.hpp"
#include "core/projection.hpp"
#include "parallel/partition.hpp"

namespace fisheye::core {

class BrownConrady;

namespace detail {
/// Monotonic process-wide counter stamped into every new map. Plan caches
/// key on (pointer, generation, dims): a pointer compare alone mis-hits
/// when a rebuilt map lands at a freed map's address.
std::uint64_t next_map_generation() noexcept;
}  // namespace detail

/// Float warp map (SoA). Entry (x, y) gives the *source* pixel sampled by
/// output pixel (x, y); entries may lie outside the source image — border
/// policy is applied at remap time.
struct WarpMap {
  int width = 0;
  int height = 0;
  std::vector<float> src_x;  ///< width*height, row-major
  std::vector<float> src_y;
  /// Identity stamp for plan caches; fresh per constructed map, carried
  /// along by copies/moves (a copy is the same logical map).
  std::uint64_t generation = detail::next_map_generation();

  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * width + x;
  }
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width) * height;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return pixel_count() * 2 * sizeof(float);
  }
};

/// Fixed-point packed map; `frac_bits` fractional bits per coordinate.
struct PackedMap {
  static constexpr std::int32_t kInvalid =
      std::numeric_limits<std::int32_t>::min();

  int width = 0;
  int height = 0;
  int frac_bits = 14;
  std::vector<std::int32_t> fx;  ///< fixed-point source x, or kInvalid
  std::vector<std::int32_t> fy;
  std::uint64_t generation = detail::next_map_generation();

  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * width + x;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return static_cast<std::size_t>(width) * height * 2 * sizeof(std::int32_t);
  }
};

/// Build the inverse map for correcting `camera`'s distortion into `view`.
/// For every output pixel: ray_for_pixel -> camera.project.
WarpMap build_map(const FisheyeCamera& camera, const ViewProjection& view);

/// Build the *synthesis* map that renders a fisheye image from an ideal
/// pinhole scene: for every fisheye pixel, the scene pixel it sees. Scene
/// camera: focal `scene_focal_px`, principal point at the scene centre.
/// Fisheye rays with theta >= pi/2 (behind the scene plane) are mapped far
/// out of bounds so the border policy blanks them.
WarpMap build_synthesis_map(const FisheyeCamera& camera, int scene_width,
                            int scene_height, double scene_focal_px,
                            int fisheye_width, int fisheye_height);

/// Build the inverse map the *classical baseline* produces: undistortion via
/// a Brown-Conrady polynomial (T3). Output geometry matches build_map with a
/// PerspectiveView of the same size/focal, but source coordinates come from
/// the polynomial forward model instead of the exact lens equations.
WarpMap build_brown_conrady_map(const BrownConrady& model, double src_cx,
                                double src_cy, const PerspectiveView& view);

/// Quantize a float map into the packed fixed-point form. Coordinates whose
/// bilinear footprint lies fully outside [0,src_w)x[0,src_h) become
/// kInvalid; the remaining ones are clamped into the valid footprint.
PackedMap pack_map(const WarpMap& map, int src_width, int src_height,
                   int frac_bits = 14);

/// Source-space bounding box (in whole pixels, inclusive of the bilinear
/// footprint) touched by output rect `r`; empty() when no valid pixel maps
/// inside the source. Drives accelerator tile DMA.
par::Rect source_bbox(const WarpMap& map, par::Rect r, int src_width,
                      int src_height);

/// Fraction of map entries whose bilinear footprint intersects the source.
double valid_fraction(const WarpMap& map, int src_width, int src_height);

}  // namespace fisheye::core
