// Warp maps: the per-output-pixel source coordinates that drive remapping.
//
// Three representations, matching the execution strategies the study
// compares (F3/F9/F20):
//  * WarpMap     — float32 source coordinates in structure-of-arrays layout
//                  (SIMD-friendly; generated once per configuration).
//  * PackedMap   — fixed-point Q(31-frac).frac coordinates in one int32 pair
//                  per pixel, the format a LUT-driven hardware datapath
//                  streams; invalid (out-of-source) pixels are a sentinel.
//  * CompactMap  — fixed-point coordinates subsampled on a stride×stride
//                  grid; per-pixel coordinates are reconstructed at remap
//                  time by integer bilinear interpolation of the four
//                  surrounding grid entries. Cuts map traffic ~stride² for
//                  smooth warps at a bounded (and stored) reconstruction
//                  error.
//
// Generation is exact double-precision math regardless of representation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/camera.hpp"
#include "core/projection.hpp"
#include "parallel/partition.hpp"

namespace fisheye::core {

class BrownConrady;

namespace detail {
/// Monotonic process-wide counter stamped into every new map. Plan caches
/// key on (pointer, generation, dims): a pointer compare alone mis-hits
/// when a rebuilt map lands at a freed map's address.
std::uint64_t next_map_generation() noexcept;
}  // namespace detail

/// Float warp map (SoA). Entry (x, y) gives the *source* pixel sampled by
/// output pixel (x, y); entries may lie outside the source image — border
/// policy is applied at remap time.
struct WarpMap {
  int width = 0;
  int height = 0;
  std::vector<float> src_x;  ///< width*height, row-major
  std::vector<float> src_y;
  /// Identity stamp for plan caches; fresh per constructed map, carried
  /// along by copies/moves (a copy is the same logical map).
  std::uint64_t generation = detail::next_map_generation();

  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * width + x;
  }
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width) * height;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return pixel_count() * 2 * sizeof(float);
  }
};

/// Fixed-point packed map; `frac_bits` fractional bits per coordinate.
struct PackedMap {
  static constexpr std::int32_t kInvalid =
      std::numeric_limits<std::int32_t>::min();

  int width = 0;
  int height = 0;
  int frac_bits = 14;
  std::vector<std::int32_t> fx;  ///< fixed-point source x, or kInvalid
  std::vector<std::int32_t> fy;
  std::uint64_t generation = detail::next_map_generation();

  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * width + x;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return static_cast<std::size_t>(width) * height * 2 * sizeof(std::int32_t);
  }
};

/// Block-subsampled fixed-point map. Grid entry (gx, gy) holds the
/// quantized source coordinate of output pixel (gx*stride, gy*stride); the
/// trailing grid line past each image edge is linearly extrapolated so
/// every output pixel has four surrounding entries. Entries are *not*
/// validity-tested at build time (a sentinel would wreck interpolation
/// across the valid/invalid boundary); far-outside coordinates saturate to
/// ±kCoordLimitPx and the remap kernel re-tests reconstructed coordinates
/// against the source bounds, matching pack_map's validity rule.
struct CompactMap {
  /// Saturation bound for stored coordinates, in source pixels. Fits int32
  /// at frac_bits <= 16 and keeps the int64 interpolation accumulator far
  /// from overflow, while staying comfortably outside any real image.
  static constexpr double kCoordLimitPx = 30000.0;

  int width = 0;   ///< full-resolution output dims the map reconstructs
  int height = 0;
  int stride = 8;     ///< grid pitch in output pixels; power of two
  int frac_bits = 14; ///< fractional bits per stored coordinate
  int grid_w = 0;  ///< (width - 1) / stride + 2; last column extrapolated
  int grid_h = 0;
  int src_width = 0;  ///< source bounds the reconstruction is tested against
  int src_height = 0;
  std::vector<std::int32_t> gx;  ///< grid_w*grid_h, row-major
  std::vector<std::int32_t> gy;
  /// Max / mean per-axis reconstruction error vs the full WarpMap, in
  /// source pixels, measured over source-valid output pixels at build time.
  float max_error = 0.0f;
  float mean_error = 0.0f;
  std::uint64_t generation = detail::next_map_generation();

  [[nodiscard]] std::size_t index(int cx, int cy) const noexcept {
    return static_cast<std::size_t>(cy) * grid_w + cx;
  }
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width) * height;
  }
  /// Bytes the remap kernel actually streams: the grid, not the frame.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return static_cast<std::size_t>(grid_w) * grid_h * 2 *
           sizeof(std::int32_t);
  }
  /// log2(stride); stride is validated to be a power of two at build.
  [[nodiscard]] int shift() const noexcept {
    int s = 0;
    while ((1 << s) < stride) ++s;
    return s;
  }
};

/// Reconstruct the fixed-point source coordinate of output pixel (x, y) by
/// integer bilinear interpolation of the four surrounding grid entries.
/// Exact (returns the stored entry) when stride == 1.
struct CompactEntry {
  std::int32_t fx = 0;
  std::int32_t fy = 0;
};
[[nodiscard]] inline CompactEntry reconstruct_entry(const CompactMap& m,
                                                    int x, int y) noexcept {
  const int shift = m.shift();
  const int mask = m.stride - 1;
  const int cx = x >> shift, tx = x & mask;
  const int cy = y >> shift, ty = y & mask;
  const std::size_t i00 = m.index(cx, cy);
  const std::size_t i10 = i00 + 1;
  const std::size_t i01 = i00 + m.grid_w;
  const std::size_t i11 = i01 + 1;
  const std::int64_t s = m.stride;
  const std::int64_t w00 = (s - tx) * (s - ty), w10 = tx * (s - ty);
  const std::int64_t w01 = (s - tx) * ty, w11 = std::int64_t{tx} * ty;
  const int rshift = 2 * shift;
  const std::int64_t half = rshift > 0 ? (std::int64_t{1} << (rshift - 1)) : 0;
  CompactEntry e;
  e.fx = static_cast<std::int32_t>(
      (m.gx[i00] * w00 + m.gx[i10] * w10 + m.gx[i01] * w01 + m.gx[i11] * w11 +
       half) >> rshift);
  e.fy = static_cast<std::int32_t>(
      (m.gy[i00] * w00 + m.gy[i10] * w10 + m.gy[i01] * w01 + m.gy[i11] * w11 +
       half) >> rshift);
  return e;
}

/// True when the reconstructed coordinate's bilinear footprint intersects
/// the source image — the same rule pack_map applies before quantization.
[[nodiscard]] inline bool compact_entry_valid(const CompactMap& m,
                                              CompactEntry e) noexcept {
  const std::int32_t one = std::int32_t{1} << m.frac_bits;
  return e.fx > -one && e.fy > -one &&
         e.fx < (static_cast<std::int32_t>(m.src_width) << m.frac_bits) &&
         e.fy < (static_cast<std::int32_t>(m.src_height) << m.frac_bits);
}

/// Build the inverse map for correcting `camera`'s distortion into `view`.
/// For every output pixel: ray_for_pixel -> camera.project.
WarpMap build_map(const FisheyeCamera& camera, const ViewProjection& view);

/// Windowed build: the map for output pixels [x0,x1) x [y0,y1) of `view`,
/// bit-exact equal to the corresponding region of build_map(camera, view)
/// (per-pixel evaluation is position-independent, so a window is a crop).
/// The window may extend past the view's nominal dims — the serving layer
/// pads compact-mode windows one stride right/bottom so every grid line the
/// kernels read is sampled rather than extrapolated.
WarpMap build_map_window(const FisheyeCamera& camera,
                         const ViewProjection& view, par::Rect window);

/// Build the *synthesis* map that renders a fisheye image from an ideal
/// pinhole scene: for every fisheye pixel, the scene pixel it sees. Scene
/// camera: focal `scene_focal_px`, principal point at the scene centre.
/// Fisheye rays with theta >= pi/2 (behind the scene plane) are mapped far
/// out of bounds so the border policy blanks them.
WarpMap build_synthesis_map(const FisheyeCamera& camera, int scene_width,
                            int scene_height, double scene_focal_px,
                            int fisheye_width, int fisheye_height);

/// Build the inverse map the *classical baseline* produces: undistortion via
/// a Brown-Conrady polynomial (T3). Output geometry matches build_map with a
/// PerspectiveView of the same size/focal, but source coordinates come from
/// the polynomial forward model instead of the exact lens equations.
WarpMap build_brown_conrady_map(const BrownConrady& model, double src_cx,
                                double src_cy, const PerspectiveView& view);

/// Quantize a float map into the packed fixed-point form. Coordinates whose
/// bilinear footprint lies fully outside [0,src_w)x[0,src_h) become
/// kInvalid; the remaining ones are clamped into the valid footprint.
PackedMap pack_map(const WarpMap& map, int src_width, int src_height,
                   int frac_bits = 14);

/// Subsample a float map onto a stride×stride fixed-point grid. `stride`
/// must be a power of two in [1, 64]. Measures max/mean reconstruction
/// error against `map` over source-valid pixels and stores them in the
/// result. stride == 1 stores every pixel exactly (no reconstruction loss).
CompactMap compact_map(const WarpMap& map, int src_width, int src_height,
                       int stride, int frac_bits = 14);

/// Source-space bounding box (in whole pixels, inclusive of the bilinear
/// footprint) touched by output rect `r`; empty() when no valid pixel maps
/// inside the source. Drives accelerator tile DMA.
par::Rect source_bbox(const WarpMap& map, par::Rect r, int src_width,
                      int src_height);

/// Compact-map overload: the bbox of *reconstructed* coordinates, so DMA
/// windows match exactly what remap_compact_rect will sample.
par::Rect source_bbox(const CompactMap& map, par::Rect r);

/// Fraction of map entries whose bilinear footprint intersects the source.
double valid_fraction(const WarpMap& map, int src_width, int src_height);

/// Compact-map overload, evaluated on reconstructed coordinates.
double valid_fraction(const CompactMap& map);

}  // namespace fisheye::core
