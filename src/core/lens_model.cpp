#include "core/lens_model.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

using util::kHalfPi;
using util::kPi;

const char* lens_kind_name(LensKind kind) noexcept {
  switch (kind) {
    case LensKind::Equidistant: return "equidistant";
    case LensKind::Equisolid: return "equisolid";
    case LensKind::Orthographic: return "orthographic";
    case LensKind::Stereographic: return "stereographic";
    case LensKind::Rectilinear: return "rectilinear";
    case LensKind::KannalaBrandt: return "kannala_brandt";
    case LensKind::Division: return "division";
  }
  return "?";
}

LensModel::LensModel(double focal_px) : focal_(focal_px) {
  FE_EXPECTS(focal_px > 0.0);
}

std::string LensModel::name() const { return lens_kind_name(kind()); }

double LensModel::image_circle_radius(double fov) const {
  FE_EXPECTS(fov > 0.0 && fov / 2.0 <= max_theta());
  return radius_from_theta(fov / 2.0);
}

namespace {

class Equidistant final : public LensModel {
 public:
  explicit Equidistant(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return focal() * theta;
  }
  double theta_from_radius(double r) const override { return r / focal(); }
  double dradius_dtheta(double) const override { return focal(); }
  double max_theta() const override { return kPi; }
  LensKind kind() const override { return LensKind::Equidistant; }
};

class Equisolid final : public LensModel {
 public:
  explicit Equisolid(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return 2.0 * focal() * std::sin(theta / 2.0);
  }
  double theta_from_radius(double r) const override {
    const double s = util::clamp(r / (2.0 * focal()), -1.0, 1.0);
    return 2.0 * std::asin(s);
  }
  double dradius_dtheta(double theta) const override {
    return focal() * std::cos(theta / 2.0);
  }
  double max_theta() const override { return kPi; }
  LensKind kind() const override { return LensKind::Equisolid; }
};

class Orthographic final : public LensModel {
 public:
  explicit Orthographic(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return focal() * std::sin(theta);
  }
  double theta_from_radius(double r) const override {
    const double s = util::clamp(r / focal(), -1.0, 1.0);
    return std::asin(s);
  }
  double dradius_dtheta(double theta) const override {
    return focal() * std::cos(theta);
  }
  double max_theta() const override { return kHalfPi; }
  LensKind kind() const override { return LensKind::Orthographic; }
};

class Stereographic final : public LensModel {
 public:
  explicit Stereographic(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return 2.0 * focal() * std::tan(theta / 2.0);
  }
  double theta_from_radius(double r) const override {
    return 2.0 * std::atan(r / (2.0 * focal()));
  }
  double dradius_dtheta(double theta) const override {
    const double c = std::cos(theta / 2.0);
    return focal() / (c * c);
  }
  double max_theta() const override { return kPi - 1e-6; }
  LensKind kind() const override { return LensKind::Stereographic; }
};

class Rectilinear final : public LensModel {
 public:
  explicit Rectilinear(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return focal() * std::tan(theta);
  }
  double theta_from_radius(double r) const override {
    return std::atan(r / focal());
  }
  double dradius_dtheta(double theta) const override {
    const double c = std::cos(theta);
    return focal() / (c * c);
  }
  double max_theta() const override { return kHalfPi - 1e-6; }
  LensKind kind() const override { return LensKind::Rectilinear; }
};

}  // namespace

double KannalaBrandt::distort_theta(double theta,
                                    const std::array<double, 4>& k) noexcept {
  const double t2 = theta * theta;
  return theta * (1.0 + t2 * (k[0] + t2 * (k[1] + t2 * (k[2] + t2 * k[3]))));
}

namespace {

/// d(theta_d)/d(theta) of the Kannala-Brandt polynomial at focal = 1.
double kb_derivative(double theta, const std::array<double, 4>& k) noexcept {
  const double t2 = theta * theta;
  return 1.0 + t2 * (3.0 * k[0] +
                     t2 * (5.0 * k[1] + t2 * (7.0 * k[2] + t2 * 9.0 * k[3])));
}

/// Largest theta in (0, pi] the polynomial is strictly increasing up to:
/// scan for the derivative's first sign change, then bisect onto it. With
/// all-zero higher terms this is pi (the equidistant special case).
double kb_monotone_cap(const std::array<double, 4>& k) noexcept {
  constexpr int kSteps = 256;
  double lo = 0.0;
  for (int i = 1; i <= kSteps; ++i) {
    const double theta = kPi * i / kSteps;
    if (kb_derivative(theta, k) <= 0.0) {
      double hi = theta;
      for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        (kb_derivative(mid, k) > 0.0 ? lo : hi) = mid;
      }
      // Back off a hair so dradius_dtheta stays positive on the domain.
      return lo * (1.0 - 1e-9);
    }
    lo = theta;
  }
  return kPi;
}

}  // namespace

KannalaBrandt::KannalaBrandt(double focal_px, const std::array<double, 4>& k)
    : LensModel(focal_px), k_(k), max_theta_(kb_monotone_cap(k)) {
  for (const double ki : k_) FE_EXPECTS(std::abs(ki) <= 5.0);
  FE_EXPECTS(max_theta_ > 0.0);
}

double KannalaBrandt::radius_from_theta(double theta) const {
  return focal() * distort_theta(theta, k_);
}

double KannalaBrandt::dradius_dtheta(double theta) const {
  return focal() * kb_derivative(theta, k_);
}

double KannalaBrandt::theta_from_radius(double r) const {
  if (r <= 0.0) return 0.0;
  const double target = r / focal();  // invert at focal = 1
  // Bracket: distort_theta is strictly increasing on [0, max_theta_].
  double lo = 0.0;
  double hi = max_theta_;
  if (target >= distort_theta(hi, k_)) return hi;
  // Newton from the equidistant guess, guarded into [lo, hi]: any step that
  // leaves the bracket (or meets a degenerate derivative) becomes a
  // bisection step, so convergence is unconditional and the usual case
  // keeps Newton's quadratic tail.
  double theta = std::min(target, hi);
  for (int it = 0; it < 80; ++it) {
    const double f = distort_theta(theta, k_) - target;
    if (f > 0.0)
      hi = theta;
    else
      lo = theta;
    const double d = kb_derivative(theta, k_);
    double next = theta - f / d;
    if (!(d > 1e-12) || next <= lo || next >= hi) next = 0.5 * (lo + hi);
    if (std::abs(next - theta) < 1e-15 * (1.0 + theta)) return next;
    theta = next;
  }
  return theta;
}

std::string KannalaBrandt::name() const {
  std::ostringstream os;
  os << lens_kind_name(kind()) << ":k1=" << k_[0] << ",k2=" << k_[1]
     << ",k3=" << k_[2] << ",k4=" << k_[3];
  return os.str();
}

DivisionModel::DivisionModel(double focal_px, double lambda)
    : LensModel(focal_px), lambda_(lambda) {
  FE_EXPECTS(lambda <= 0.0 && lambda >= -10.0);
}

double DivisionModel::radius_from_theta(double theta) const {
  const double u = std::tan(theta);
  if (lambda_ == 0.0 || u == 0.0) return focal() * u;
  return focal() * (1.0 - std::sqrt(1.0 - 4.0 * lambda_ * u * u)) /
         (2.0 * lambda_ * u);
}

double DivisionModel::theta_from_radius(double r) const {
  const double rd = r / focal();
  return std::atan(rd / (1.0 + lambda_ * rd * rd));
}

double DivisionModel::dradius_dtheta(double theta) const {
  // Implicit differentiation of u = d / (1 + lambda d^2) with u = tan theta
  // (the closed-form inverse read forwards): du/d(theta) = 1 + u^2 and
  // du/dd = (1 - lambda d^2) / (1 + lambda d^2)^2.
  const double u = std::tan(theta);
  const double d = (lambda_ == 0.0 || u == 0.0)
                       ? u
                       : (1.0 - std::sqrt(1.0 - 4.0 * lambda_ * u * u)) /
                             (2.0 * lambda_ * u);
  const double denom = 1.0 - lambda_ * d * d;
  const double num = 1.0 + lambda_ * d * d;
  return focal() * (1.0 + u * u) * num * num / denom;
}

double DivisionModel::max_theta() const { return kHalfPi - 1e-6; }

std::string DivisionModel::name() const {
  std::ostringstream os;
  os << lens_kind_name(kind()) << ":lambda=" << lambda_;
  return os.str();
}

std::unique_ptr<LensModel> make_lens(LensKind kind, double focal_px) {
  switch (kind) {
    case LensKind::Equidistant:
      return std::make_unique<Equidistant>(focal_px);
    case LensKind::Equisolid:
      return std::make_unique<Equisolid>(focal_px);
    case LensKind::Orthographic:
      return std::make_unique<Orthographic>(focal_px);
    case LensKind::Stereographic:
      return std::make_unique<Stereographic>(focal_px);
    case LensKind::Rectilinear:
      return std::make_unique<Rectilinear>(focal_px);
    case LensKind::KannalaBrandt:
      return std::make_unique<KannalaBrandt>(
          focal_px, std::array<double, 4>{-0.02, 0.002, 0.0, 0.0});
    case LensKind::Division:
      return std::make_unique<DivisionModel>(focal_px, -0.25);
  }
  throw InvalidArgument("make_lens: unknown kind");
}

double focal_for_fov(LensKind kind, double fov_rad, double circle_radius_px) {
  FE_EXPECTS(fov_rad > 0.0 && circle_radius_px > 0.0);
  // radius_from_theta is linear in focal for every model, so compute the
  // radius at focal=1 and scale.
  const auto unit = make_lens(kind, 1.0);
  const double half = fov_rad / 2.0;
  FE_EXPECTS(half <= unit->max_theta());
  const double unit_radius = unit->radius_from_theta(half);
  FE_EXPECTS(unit_radius > 0.0);
  return circle_radius_px / unit_radius;
}

}  // namespace fisheye::core
