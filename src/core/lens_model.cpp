#include "core/lens_model.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

using util::kHalfPi;
using util::kPi;

const char* lens_kind_name(LensKind kind) noexcept {
  switch (kind) {
    case LensKind::Equidistant: return "equidistant";
    case LensKind::Equisolid: return "equisolid";
    case LensKind::Orthographic: return "orthographic";
    case LensKind::Stereographic: return "stereographic";
    case LensKind::Rectilinear: return "rectilinear";
  }
  return "?";
}

LensModel::LensModel(double focal_px) : focal_(focal_px) {
  FE_EXPECTS(focal_px > 0.0);
}

std::string LensModel::name() const { return lens_kind_name(kind()); }

double LensModel::image_circle_radius(double fov) const {
  FE_EXPECTS(fov > 0.0 && fov / 2.0 <= max_theta());
  return radius_from_theta(fov / 2.0);
}

namespace {

class Equidistant final : public LensModel {
 public:
  explicit Equidistant(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return focal() * theta;
  }
  double theta_from_radius(double r) const override { return r / focal(); }
  double dradius_dtheta(double) const override { return focal(); }
  double max_theta() const override { return kPi; }
  LensKind kind() const override { return LensKind::Equidistant; }
};

class Equisolid final : public LensModel {
 public:
  explicit Equisolid(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return 2.0 * focal() * std::sin(theta / 2.0);
  }
  double theta_from_radius(double r) const override {
    const double s = util::clamp(r / (2.0 * focal()), -1.0, 1.0);
    return 2.0 * std::asin(s);
  }
  double dradius_dtheta(double theta) const override {
    return focal() * std::cos(theta / 2.0);
  }
  double max_theta() const override { return kPi; }
  LensKind kind() const override { return LensKind::Equisolid; }
};

class Orthographic final : public LensModel {
 public:
  explicit Orthographic(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return focal() * std::sin(theta);
  }
  double theta_from_radius(double r) const override {
    const double s = util::clamp(r / focal(), -1.0, 1.0);
    return std::asin(s);
  }
  double dradius_dtheta(double theta) const override {
    return focal() * std::cos(theta);
  }
  double max_theta() const override { return kHalfPi; }
  LensKind kind() const override { return LensKind::Orthographic; }
};

class Stereographic final : public LensModel {
 public:
  explicit Stereographic(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return 2.0 * focal() * std::tan(theta / 2.0);
  }
  double theta_from_radius(double r) const override {
    return 2.0 * std::atan(r / (2.0 * focal()));
  }
  double dradius_dtheta(double theta) const override {
    const double c = std::cos(theta / 2.0);
    return focal() / (c * c);
  }
  double max_theta() const override { return kPi - 1e-6; }
  LensKind kind() const override { return LensKind::Stereographic; }
};

class Rectilinear final : public LensModel {
 public:
  explicit Rectilinear(double f) : LensModel(f) {}
  double radius_from_theta(double theta) const override {
    return focal() * std::tan(theta);
  }
  double theta_from_radius(double r) const override {
    return std::atan(r / focal());
  }
  double dradius_dtheta(double theta) const override {
    const double c = std::cos(theta);
    return focal() / (c * c);
  }
  double max_theta() const override { return kHalfPi - 1e-6; }
  LensKind kind() const override { return LensKind::Rectilinear; }
};

}  // namespace

std::unique_ptr<LensModel> make_lens(LensKind kind, double focal_px) {
  switch (kind) {
    case LensKind::Equidistant:
      return std::make_unique<Equidistant>(focal_px);
    case LensKind::Equisolid:
      return std::make_unique<Equisolid>(focal_px);
    case LensKind::Orthographic:
      return std::make_unique<Orthographic>(focal_px);
    case LensKind::Stereographic:
      return std::make_unique<Stereographic>(focal_px);
    case LensKind::Rectilinear:
      return std::make_unique<Rectilinear>(focal_px);
  }
  throw InvalidArgument("make_lens: unknown kind");
}

double focal_for_fov(LensKind kind, double fov_rad, double circle_radius_px) {
  FE_EXPECTS(fov_rad > 0.0 && circle_radius_px > 0.0);
  // radius_from_theta is linear in focal for every model, so compute the
  // radius at focal=1 and scale.
  const auto unit = make_lens(kind, 1.0);
  const double half = fov_rad / 2.0;
  FE_EXPECTS(half <= unit->max_theta());
  const double unit_radius = unit->radius_from_theta(half);
  FE_EXPECTS(unit_radius > 0.0);
  return circle_radius_px / unit_radius;
}

}  // namespace fisheye::core
