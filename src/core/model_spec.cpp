#include "core/model_spec.hpp"

#include <cmath>

#include "core/backend_registry.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

namespace {

/// Strip the optional `lens=` / `view=` prefix so both the registry-token
/// form and the bare canonical form parse.
std::string strip_prefix(const std::string& text, const char* prefix) {
  const std::string p(prefix);
  if (text.rfind(p, 0) == 0) return text.substr(p.size());
  return text;
}

/// Double-valued counterpart of require_spec_range: user input, so out of
/// range is InvalidArgument naming the spec and option, never a contract.
void require_range(const BackendSpec& spec, const std::string& key, double v,
                   double lo, double hi) {
  if (std::isfinite(v) && v >= lo && v <= hi) return;
  throw InvalidArgument("spec '" + spec.text() + "': option '" + key + "=" +
                        std::to_string(v) + "' is out of range [" +
                        std::to_string(lo) + ", " + std::to_string(hi) + "]");
}

LensKind parse_lens_kind(const BackendSpec& spec) {
  for (const LensKind kind :
       {LensKind::Equidistant, LensKind::Equisolid, LensKind::Orthographic,
        LensKind::Stereographic, LensKind::Rectilinear,
        LensKind::KannalaBrandt, LensKind::Division}) {
    if (spec.kind() == lens_kind_name(kind)) return kind;
  }
  throw InvalidArgument(
      "lens spec '" + spec.text() + "': unknown kind '" + spec.kind() +
      "' (equidistant, equisolid, orthographic, stereographic, rectilinear, "
      "kannala_brandt, division)");
}

/// The kind's default field of view: 180 degrees everywhere except the
/// division model, whose normalized-tan formulation saturates a hair short
/// of 180 — no image circle can hold its full hemisphere.
double default_fov_deg(LensKind kind) noexcept {
  return kind == LensKind::Division ? 160.0 : 180.0;
}

}  // namespace

LensSpec::LensSpec(LensKind kind_) : kind(kind_) {
  fov_deg = default_fov_deg(kind);
}

LensSpec LensSpec::parse(const std::string& text) {
  BackendSpec spec = BackendSpec::parse(strip_prefix(text, "lens="));
  LensSpec o(parse_lens_kind(spec));
  if (o.kind == LensKind::KannalaBrandt) {
    o.k[0] = spec.value_double("k1", o.k[0]);
    o.k[1] = spec.value_double("k2", o.k[1]);
    o.k[2] = spec.value_double("k3", o.k[2]);
    o.k[3] = spec.value_double("k4", o.k[3]);
    for (int i = 0; i < 4; ++i)
      require_range(spec, "k" + std::to_string(i + 1), o.k[i], -5.0, 5.0);
  }
  if (o.kind == LensKind::Division) {
    o.lambda = spec.value_double("lambda", o.lambda);
    require_range(spec, "lambda", o.lambda, -10.0, 0.0);
  }
  o.fov_deg = spec.value_double("fov", o.fov_deg);
  require_range(spec, "fov", o.fov_deg, 1e-3, 360.0);
  // Inapplicable parameters (k1 on an analytic lens, lambda on KB) were
  // not consumed above, so finish() rejects them by name here.
  spec.finish(
      "fov=<degrees>; kannala_brandt adds k1..k4=<coeff>; division adds "
      "lambda=<coeff>");
  // The field of view must sit inside the model's invertible domain
  // (rectilinear:fov=180 would need an infinite image circle).
  const auto unit = o.make(1.0);
  if (o.fov_rad() / 2.0 > unit->max_theta())
    throw InvalidArgument(
        "lens spec '" + spec.text() + "': option 'fov=" +
        std::to_string(o.fov_deg) + "' exceeds the " + lens_kind_name(o.kind) +
        " model's usable field of view (" +
        std::to_string(util::rad_to_deg(unit->max_theta()) * 2.0) + " deg)");
  return o;
}

std::string LensSpec::name() const {
  SpecBuilder b(lens_kind_name(kind));
  if (kind == LensKind::KannalaBrandt) {
    b.opt("k1", k[0]);
    b.opt("k2", k[1]);
    b.opt("k3", k[2]);
    b.opt("k4", k[3]);
  }
  if (kind == LensKind::Division) b.opt("lambda", lambda);
  if (fov_deg != default_fov_deg(kind)) b.opt("fov", fov_deg);
  return b.str();
}

double LensSpec::fov_rad() const noexcept { return util::deg_to_rad(fov_deg); }

std::unique_ptr<LensModel> LensSpec::make(double focal_px) const {
  switch (kind) {
    case LensKind::KannalaBrandt:
      return std::make_unique<KannalaBrandt>(focal_px, k);
    case LensKind::Division:
      return std::make_unique<DivisionModel>(focal_px, lambda);
    default:
      return make_lens(kind, focal_px);
  }
}

double LensSpec::focal_for_circle(double circle_radius_px) const {
  if (circle_radius_px <= 0.0)
    throw InvalidArgument("lens spec: image circle radius must be positive");
  // Every model is linear in focal (the division model is defined in
  // normalized coordinates to keep this true), so evaluate at focal = 1
  // and scale — same trick as focal_for_fov.
  const auto unit = make(1.0);
  const double half = fov_rad() / 2.0;
  if (half > unit->max_theta())
    throw InvalidArgument("lens spec '" + name() +
                          "': fov exceeds the model's usable field of view");
  const double unit_radius = unit->radius_from_theta(half);
  FE_EXPECTS(unit_radius > 0.0);
  return circle_radius_px / unit_radius;
}

const char* view_kind_name(ViewKind kind) noexcept {
  switch (kind) {
    case ViewKind::Perspective: return "perspective";
    case ViewKind::Cylindrical: return "cylindrical";
    case ViewKind::Equirect: return "equirect";
    case ViewKind::QuadView: return "quadview";
  }
  return "?";
}

ViewSpec::ViewSpec(ViewKind kind_) : kind(kind_) {
  if (kind == ViewKind::QuadView) fov_deg = 90.0;
}

ViewSpec ViewSpec::parse(const std::string& text) {
  BackendSpec spec = BackendSpec::parse(strip_prefix(text, "view="));
  ViewSpec o;
  bool known = false;
  for (const ViewKind kind : {ViewKind::Perspective, ViewKind::Cylindrical,
                              ViewKind::Equirect, ViewKind::QuadView}) {
    if (spec.kind() == view_kind_name(kind)) {
      o = ViewSpec(kind);
      known = true;
      break;
    }
  }
  if (!known)
    throw InvalidArgument("view spec '" + spec.text() + "': unknown kind '" +
                          spec.kind() +
                          "' (perspective, cylindrical, equirect, quadview)");
  switch (o.kind) {
    case ViewKind::Perspective:
      o.fov_deg = spec.value_double("fov", o.fov_deg);
      if (o.fov_deg != 0.0)  // 0 = match the caller's focal
        require_range(spec, "fov", o.fov_deg, 1e-3, 179.0);
      spec.finish("fov=<degrees> (0 = match the source focal)");
      break;
    case ViewKind::Cylindrical:
      o.hfov_deg = spec.value_double("hfov", o.hfov_deg);
      require_range(spec, "hfov", o.hfov_deg, 1e-3, 360.0);
      spec.finish("hfov=<degrees>");
      break;
    case ViewKind::Equirect:
      o.hfov_deg = spec.value_double("hfov", o.hfov_deg);
      o.vfov_deg = spec.value_double("vfov", o.vfov_deg);
      require_range(spec, "hfov", o.hfov_deg, 1e-3, 360.0);
      require_range(spec, "vfov", o.vfov_deg, 1e-3, 180.0);
      spec.finish("hfov=<degrees>, vfov=<degrees>");
      break;
    case ViewKind::QuadView:
      o.fov_deg = spec.value_double("fov", o.fov_deg);
      o.tilt_deg = spec.value_double("tilt", o.tilt_deg);
      require_range(spec, "fov", o.fov_deg, 1e-3, 179.0);
      require_range(spec, "tilt", o.tilt_deg, 0.0, 90.0);
      spec.finish("fov=<degrees>, tilt=<degrees>");
      break;
  }
  return o;
}

std::string ViewSpec::name() const {
  SpecBuilder b(view_kind_name(kind));
  switch (kind) {
    case ViewKind::Perspective:
      if (fov_deg != 0.0) b.opt("fov", fov_deg);
      break;
    case ViewKind::Cylindrical:
      if (hfov_deg != 180.0) b.opt("hfov", hfov_deg);
      break;
    case ViewKind::Equirect:
      if (hfov_deg != 180.0) b.opt("hfov", hfov_deg);
      if (vfov_deg != 90.0) b.opt("vfov", vfov_deg);
      break;
    case ViewKind::QuadView:
      if (fov_deg != 90.0) b.opt("fov", fov_deg);
      if (tilt_deg != 40.0) b.opt("tilt", tilt_deg);
      break;
  }
  return b.str();
}

std::unique_ptr<ViewProjection> ViewSpec::make(int width, int height,
                                               double focal_px) const {
  switch (kind) {
    case ViewKind::Perspective: {
      const double focal =
          fov_deg != 0.0
              ? 0.5 * width / std::tan(util::deg_to_rad(fov_deg) / 2.0)
              : focal_px;
      return std::make_unique<PerspectiveView>(width, height, focal);
    }
    case ViewKind::Cylindrical:
      return std::make_unique<CylindricalView>(
          width, height, util::deg_to_rad(hfov_deg), focal_px);
    case ViewKind::Equirect:
      return std::make_unique<EquirectangularView>(
          width, height, util::deg_to_rad(hfov_deg),
          util::deg_to_rad(vfov_deg));
    case ViewKind::QuadView:
      return std::make_unique<QuadView>(width, height,
                                        util::deg_to_rad(fov_deg),
                                        util::deg_to_rad(tilt_deg));
  }
  throw InvalidArgument("view spec: unknown kind");
}

}  // namespace fisheye::core
