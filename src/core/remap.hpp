// Remap executors: produce a rectangle of output pixels from a source image
// plus a warp description. These are the serial building blocks every
// backend (CPU pool, SIMD, simulated accelerators) composes.
//
// Four strategies, matching the F3/F9/F20 comparisons:
//  * remap_rect         — float LUT (WarpMap) + any interpolation kernel.
//  * remap_packed_rect  — fixed-point LUT (PackedMap), integer bilinear;
//                         the hardware-datapath kernel.
//  * remap_compact_rect — block-subsampled LUT (CompactMap): per-pixel
//                         coordinates reconstructed by integer bilinear
//                         interpolation of grid entries, then the same
//                         integer sampling datapath as the packed kernel.
//  * remap_otf_rect     — no LUT: source coordinates recomputed per pixel
//                         from camera + view (trades FLOPs for bandwidth).
#pragma once

#include <cstdint>

#include "core/camera.hpp"
#include "core/interp.hpp"
#include "core/mapping.hpp"
#include "core/projection.hpp"
#include "image/border.hpp"
#include "image/image.hpp"
#include "parallel/partition.hpp"

namespace fisheye::core {

struct RemapOptions {
  Interp interp = Interp::Bilinear;
  img::BorderMode border = img::BorderMode::Constant;
  std::uint8_t fill = 0;
};

/// Float-LUT remap of `rect` (a sub-rectangle of `dst`/`map` space).
/// `map` dimensions must equal `dst` dimensions; channels must match between
/// src and dst. `map_origin_*` shift map lookups when `dst` is a tile view
/// whose (0,0) corresponds to map entry (map_origin_x, map_origin_y) — the
/// accelerator local-store path uses this.
void remap_rect(img::ConstImageView<std::uint8_t> src,
                img::ImageView<std::uint8_t> dst, const WarpMap& map,
                par::Rect rect, const RemapOptions& opts);

/// Same, but source coordinates are offset by (-src_off_x, -src_off_y)
/// before sampling: `src` is a copied sub-window of the real source whose
/// top-left corner sits at (src_off_x, src_off_y) in full-frame coordinates.
void remap_rect_offset(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst, const WarpMap& map,
                       par::Rect rect, int src_off_x, int src_off_y,
                       const RemapOptions& opts);

/// Fixed-point bilinear remap from a PackedMap. Invalid entries produce
/// `fill`. Weights use the top 8 fractional bits (or all of them when
/// frac_bits < 8), mirroring an 8-bit blending datapath.
void remap_packed_rect(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst, const PackedMap& map,
                       par::Rect rect, std::uint8_t fill);

/// Windowed variant: `src` is a copied sub-window of the real source whose
/// top-left corner sits at (src_off_x, src_off_y) in full-frame
/// coordinates. The +1-tap clamp needs the full-frame source dimensions
/// the map was packed against — a PackedMap does not record them (its
/// serialized format predates windowed execution), so they are passed
/// explicitly. The window must cover every valid entry's 2x2 footprint.
void remap_packed_rect_offset(img::ConstImageView<std::uint8_t> src,
                              img::ImageView<std::uint8_t> dst,
                              const PackedMap& map, par::Rect rect,
                              int src_off_x, int src_off_y, int src_width,
                              int src_height, std::uint8_t fill);

/// Compact-map remap: reconstructs each pixel's fixed-point source
/// coordinate from the stride×stride grid (integer bilinear interpolation,
/// incremental per row), re-tests it against the source bounds, then runs
/// the packed kernel's 8-bit blending datapath. At stride == 1 the
/// reconstruction is exact and the output matches remap_packed_rect.
/// `src` must have the full source dimensions recorded in the map.
void remap_compact_rect(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const CompactMap& map, par::Rect rect,
                        std::uint8_t fill);

/// Windowed variant for accelerator local stores: `src` is a copied
/// sub-window of the real source whose top-left corner sits at
/// (src_off_x, src_off_y) in full-frame coordinates. Validity and clamping
/// still use the full-frame bounds; the window must cover the rect's
/// source_bbox (it does when sized via source_bbox(CompactMap, rect)).
void remap_compact_rect_offset(img::ConstImageView<std::uint8_t> src,
                               img::ImageView<std::uint8_t> dst,
                               const CompactMap& map, par::Rect rect,
                               int src_off_x, int src_off_y,
                               std::uint8_t fill);

/// On-the-fly remap: recomputes the inverse mapping per pixel.
/// `fast_math` swaps libm atan/sin for the polynomial approximations in
/// util/mathx.hpp (the accuracy cost is measured in F3).
void remap_otf_rect(img::ConstImageView<std::uint8_t> src,
                    img::ImageView<std::uint8_t> dst,
                    const FisheyeCamera& camera, const ViewProjection& view,
                    par::Rect rect, const RemapOptions& opts,
                    bool fast_math = false);

namespace detail {

/// Monomorphized executors, one per interpolation kernel. The public
/// remap_rect/remap_otf_rect entry points and the tile-kernel catalogue
/// (core/kernel.cpp — the library's ONLY runtime interpolation dispatch)
/// resolve onto these; nothing below this layer branches on Interp.
void remap_rect_nearest(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst, const WarpMap& map,
                        par::Rect rect, int src_off_x, int src_off_y,
                        const RemapOptions& opts);
void remap_rect_bilinear(img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst, const WarpMap& map,
                         par::Rect rect, int src_off_x, int src_off_y,
                         const RemapOptions& opts);
void remap_rect_bicubic(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst, const WarpMap& map,
                        par::Rect rect, int src_off_x, int src_off_y,
                        const RemapOptions& opts);
void remap_rect_lanczos3(img::ConstImageView<std::uint8_t> src,
                         img::ImageView<std::uint8_t> dst, const WarpMap& map,
                         par::Rect rect, int src_off_x, int src_off_y,
                         const RemapOptions& opts);

void remap_otf_nearest(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const FisheyeCamera& camera, const ViewProjection& view,
                       par::Rect rect, const RemapOptions& opts,
                       bool fast_math);
void remap_otf_bilinear(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const FisheyeCamera& camera,
                        const ViewProjection& view, par::Rect rect,
                        const RemapOptions& opts, bool fast_math);
void remap_otf_bicubic(img::ConstImageView<std::uint8_t> src,
                       img::ImageView<std::uint8_t> dst,
                       const FisheyeCamera& camera, const ViewProjection& view,
                       par::Rect rect, const RemapOptions& opts,
                       bool fast_math);
void remap_otf_lanczos3(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        const FisheyeCamera& camera,
                        const ViewProjection& view, par::Rect rect,
                        const RemapOptions& opts, bool fast_math);

}  // namespace detail

}  // namespace fisheye::core
