// Plan-time autotuner: resolve tuned=auto by measurement.
//
// A backend whose spec carries tuned=auto defers several knobs — kernel
// datapath, SoA strip length, tile shape, map representation — to its
// first plan(). The backend enumerates its candidate TunedSpecs, this
// engine measures each on a couple of synthesized frames of the context's
// exact geometry (gradient-filled, so gathers touch realistic addresses),
// and the fastest candidate is locked into the backend's canonical name
// as a round-trippable tuned=<token>. Decisions are memoized process-wide
// by (ISA, geometry, base spec) — and, when the FISHEYE_TUNE_CACHE
// environment variable names a file, across processes too — so replanning
// the same configuration never re-measures.
//
// The measurement frames are private allocations: the caller's context may
// carry null pixel pointers (plan-time contract) and is never written.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"

namespace fisheye::core {

/// A candidate tuning point plus a display label (debug/bench output).
struct AutotuneCandidate {
  TunedSpec spec;
  std::string label;
};

/// Process-wide memo of autotune decisions, keyed by
/// autotune_cache_key(). Always in-memory; mirrored to the file named by
/// the FISHEYE_TUNE_CACHE environment variable when it is set (loaded
/// once, lazily — tests that never set the variable touch no disk).
class AutotuneCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
  };

  static AutotuneCache& instance();

  [[nodiscard]] std::optional<TunedSpec> lookup(const std::string& key);
  void store(const std::string& key, const TunedSpec& spec);
  /// Drop every memoized decision (tests; does not truncate the disk file).
  void clear();
  /// Drop in-memory state and re-read the FISHEYE_TUNE_CACHE file (tests:
  /// the file is otherwise loaded once per process). A missing, corrupt,
  /// truncated, or version-skewed file is ignored entirely — the cache
  /// comes back empty and the next store() rewrites the file cleanly.
  void reload_disk();
  [[nodiscard]] Stats stats() const;

 private:
  AutotuneCache() = default;
  void load_disk_locked();

  mutable std::mutex mu_;
  std::map<std::string, TunedSpec> entries_;
  Stats stats_;
  bool disk_loaded_ = false;
};

/// Cache key for tuning `ctx` under `base_spec` (the backend's pending
/// name, tuned=auto included): ISA × frame geometry × mode × spec. Tuning
/// is hardware- and shape-specific; the ISA token keeps a cache file moved
/// between machines from poisoning decisions.
[[nodiscard]] std::string autotune_cache_key(const ExecContext& ctx,
                                             const std::string& base_spec);

using AutotunePlanFn =
    std::function<ExecutionPlan(const ExecContext&, const TunedSpec&)>;
using AutotuneExecFn =
    std::function<void(const ExecutionPlan&, const ExecContext&)>;

/// Measure `candidates` on synthesized frames of ctx's geometry and return
/// the fastest (best of `frames` timed runs after `warmup` untimed ones),
/// memoized through AutotuneCache under `cache_key`. A candidate whose
/// plan_fn throws is skipped; nullopt when none planned successfully (the
/// caller falls back to its untuned path, which surfaces the real error).
[[nodiscard]] std::optional<TunedSpec> autotune_select(
    const ExecContext& ctx, const std::string& cache_key,
    const std::vector<AutotuneCandidate>& candidates,
    const AutotunePlanFn& plan_fn, const AutotuneExecFn& exec_fn,
    int warmup = 1, int frames = 3);

}  // namespace fisheye::core
