#include "core/brown_conrady.hpp"

#include <cmath>

#include "core/lens_model.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

BrownConrady::BrownConrady(BrownConradyCoeffs coeffs, double focal_px)
    : coeffs_(coeffs), focal_(focal_px) {
  FE_EXPECTS(focal_px > 0.0);
}

namespace {

double radial_factor(const BrownConradyCoeffs& c, double r2) noexcept {
  return 1.0 + r2 * (c.k1 + r2 * (c.k2 + r2 * c.k3));
}

/// d/dr of r * radial_factor(r^2).
double radial_derivative(const BrownConradyCoeffs& c, double r) noexcept {
  const double r2 = r * r;
  return 1.0 + r2 * (3.0 * c.k1 + r2 * (5.0 * c.k2 + r2 * 7.0 * c.k3));
}

util::Vec2 tangential(const BrownConradyCoeffs& c, util::Vec2 p) noexcept {
  const double r2 = p.x * p.x + p.y * p.y;
  return {2.0 * c.p1 * p.x * p.y + c.p2 * (r2 + 2.0 * p.x * p.x),
          c.p1 * (r2 + 2.0 * p.y * p.y) + 2.0 * c.p2 * p.x * p.y};
}

}  // namespace

util::Vec2 BrownConrady::distort_normalized(util::Vec2 u) const {
  const double r2 = u.x * u.x + u.y * u.y;
  const double rho = radial_factor(coeffs_, r2);
  const util::Vec2 t = tangential(coeffs_, u);
  return {u.x * rho + t.x, u.y * rho + t.y};
}

double BrownConrady::distort_radius(double r) const {
  return r * radial_factor(coeffs_, r * r);
}

double BrownConrady::undistort_radius(double rd, int max_iterations) const {
  FE_EXPECTS(rd >= 0.0 && max_iterations > 0);
  if (rd == 0.0) return 0.0;
  // Newton on g(r) = r * rho(r^2) - rd. The radial polynomial fitted against
  // real lenses is monotone over the fitted range, so Newton from rd
  // converges quadratically; we guard against a non-positive derivative
  // (outside the monotone range) by falling back to bisection steps.
  double r = rd;
  for (int i = 0; i < max_iterations; ++i) {
    const double g = distort_radius(r) - rd;
    if (std::abs(g) < 1e-12) break;
    const double dg = radial_derivative(coeffs_, r);
    if (dg <= 1e-9) {
      r *= g > 0.0 ? 0.5 : 1.5;
      continue;
    }
    r -= g / dg;
    if (r < 0.0) r = 0.0;
  }
  return r;
}

util::Vec2 BrownConrady::undistort_normalized(util::Vec2 d,
                                              int max_iterations) const {
  // Fixed-point iteration u <- (d - tang(u)) / rho(|u|^2), seeded by the
  // radial Newton solve. With zero tangential terms one pass is exact.
  const double rd = std::hypot(d.x, d.y);
  double scale = 1.0;
  if (rd > 0.0) scale = undistort_radius(rd, max_iterations) / rd;
  util::Vec2 u{d.x * scale, d.y * scale};
  for (int i = 0; i < max_iterations; ++i) {
    const util::Vec2 t = tangential(coeffs_, u);
    const double r2 = u.x * u.x + u.y * u.y;
    const double rho = radial_factor(coeffs_, r2);
    if (rho <= 1e-9) break;
    const util::Vec2 next{(d.x - t.x) / rho, (d.y - t.y) / rho};
    const double step = std::hypot(next.x - u.x, next.y - u.y);
    u = next;
    if (step < 1e-12) break;
  }
  return u;
}

util::Vec2 BrownConrady::distort_pixel(util::Vec2 px, util::Vec2 centre) const {
  const util::Vec2 n{(px.x - centre.x) / focal_, (px.y - centre.y) / focal_};
  const util::Vec2 d = distort_normalized(n);
  return {d.x * focal_ + centre.x, d.y * focal_ + centre.y};
}

util::Vec2 BrownConrady::undistort_pixel(util::Vec2 px,
                                         util::Vec2 centre) const {
  const util::Vec2 n{(px.x - centre.x) / focal_, (px.y - centre.y) / focal_};
  const util::Vec2 u = undistort_normalized(n);
  return {u.x * focal_ + centre.x, u.y * focal_ + centre.y};
}

BrownConrady fit_brown_conrady(const LensModel& lens, double max_theta,
                               int samples) {
  FE_EXPECTS(samples >= 8);
  FE_EXPECTS(max_theta > 0.0 && max_theta <= lens.max_theta());
  // tan(theta) must stay finite: the undistorted (pinhole) radius of a ray
  // at theta is f*tan(theta).
  FE_EXPECTS(max_theta < util::kHalfPi);

  // Solve min sum_i (ru_i*(1 + k1 ru^2 + k2 ru^4 + k3 ru^6) - rd_i)^2 over
  // normalized radii: ru = tan(theta), rd = radius_from_theta(theta)/f.
  util::MatX a(static_cast<std::size_t>(samples), 3);
  std::vector<double> b(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double theta = max_theta * (i + 1) / samples;
    const double ru = std::tan(theta);
    const double rd = lens.radius_from_theta(theta) / lens.focal();
    const double ru2 = ru * ru;
    a(static_cast<std::size_t>(i), 0) = ru * ru2;
    a(static_cast<std::size_t>(i), 1) = ru * ru2 * ru2;
    a(static_cast<std::size_t>(i), 2) = ru * ru2 * ru2 * ru2;
    b[static_cast<std::size_t>(i)] = rd - ru;
  }
  const std::vector<double> k = util::solve_least_squares(a, b);
  return {BrownConradyCoeffs{k[0], k[1], k[2], 0.0, 0.0}, lens.focal()};
}

}  // namespace fisheye::core
