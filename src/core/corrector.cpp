#include "core/corrector.hpp"

#include <numeric>

#include "core/tile_order.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

Corrector::Corrector(const CorrectorConfig& config) : config_(config) {
  FE_EXPECTS(config.src_width > 0 && config.src_height > 0);
  // Field-of-view resolution: an explicit fov_rad overrides the lens spec;
  // otherwise the spec's fov (default 180 degrees) governs. Either way both
  // fields agree afterwards, so the spec's canonical name() tells the truth.
  if (config_.fov_rad == 0.0) {
    config_.fov_rad = config_.lens.fov_rad();
  } else {
    config_.lens.fov_deg = util::rad_to_deg(config_.fov_rad);
  }
  FE_EXPECTS(config_.fov_rad > 0.0);
  if (config_.out_width == 0) config_.out_width = config_.src_width;
  if (config_.out_height == 0) config_.out_height = config_.src_height;
  FE_EXPECTS(config_.out_width > 0 && config_.out_height > 0);
  FE_EXPECTS(config_.frac_bits >= 1 && config_.frac_bits <= 22);

  camera_ = std::make_unique<FisheyeCamera>(FisheyeCamera::centered(
      config_.lens, config_.src_width, config_.src_height));

  double out_focal = config_.out_focal;
  if (out_focal == 0.0) {
    // Match the centre-of-image resolution of the fisheye input: the output
    // perspective focal equals d(radius)/d(theta) at theta = 0.
    out_focal = camera_->lens().dradius_dtheta(0.0);
    config_.out_focal = out_focal;
  }
  view_ = config_.view.make(config_.out_width, config_.out_height, out_focal);

  if (config_.map_mode != MapMode::OnTheFly) {
    map_ = build_map(*camera_, *view_);
    if (config_.map_mode == MapMode::PackedLut) {
      FE_EXPECTS(config_.remap.interp == Interp::Bilinear);
      packed_ = pack_map(*map_, config_.src_width, config_.src_height,
                         config_.frac_bits);
    }
    if (config_.map_mode == MapMode::CompactLut) {
      FE_EXPECTS(config_.remap.interp == Interp::Bilinear);
      compact_ = compact_map(*map_, config_.src_width, config_.src_height,
                             config_.compact_stride, config_.frac_bits);
    }
  }
}

ExecContext Corrector::make_context(img::ConstImageView<std::uint8_t> src,
                                    img::ImageView<std::uint8_t> dst) const {
  FE_EXPECTS(src.width == config_.src_width &&
             src.height == config_.src_height);
  FE_EXPECTS(dst.width == config_.out_width &&
             dst.height == config_.out_height);
  FE_EXPECTS(src.channels == dst.channels);

  ExecContext ctx;
  ctx.src = src;
  ctx.dst = dst;
  ctx.map = map_ ? &*map_ : nullptr;
  ctx.packed = packed_ ? &*packed_ : nullptr;
  ctx.compact = compact_ ? &*compact_ : nullptr;
  ctx.camera = camera_.get();
  ctx.view = view_.get();
  ctx.opts = config_.remap;
  ctx.mode = config_.map_mode;
  ctx.fast_math = config_.fast_math;
  return ctx;
}

void Corrector::correct(img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst,
                        Backend& backend) const {
  backend.execute(make_context(src, dst));
}

Corrector::Prepared Corrector::prepare(Backend& backend, int channels) const {
  FE_EXPECTS(channels >= 1);
  // Planning reads only geometry, never pixels: shape-only views suffice.
  const img::ConstImageView<std::uint8_t> src(
      nullptr, config_.src_width, config_.src_height, channels,
      static_cast<std::size_t>(config_.src_width) * channels);
  const img::ImageView<std::uint8_t> dst{
      nullptr, config_.out_width, config_.out_height, channels,
      static_cast<std::size_t>(config_.out_width) * channels};
  return Prepared{&backend, backend.plan(make_context(src, dst))};
}

void Corrector::correct(const Prepared& prepared,
                        img::ConstImageView<std::uint8_t> src,
                        img::ImageView<std::uint8_t> dst) const {
  FE_EXPECTS(prepared.valid());
  prepared.backend->execute(prepared.plan, make_context(src, dst));
}

ExecutionPlan Corrector::prepare_stream(int channels, int tile_w,
                                        int tile_h) const {
  FE_EXPECTS(channels >= 1);
  // Shape-only views: planning reads geometry, never pixels.
  const img::ConstImageView<std::uint8_t> src(
      nullptr, config_.src_width, config_.src_height, channels,
      static_cast<std::size_t>(config_.src_width) * channels);
  const img::ImageView<std::uint8_t> dst{
      nullptr, config_.out_width, config_.out_height, channels,
      static_cast<std::size_t>(config_.out_width) * channels};
  return build_service_plan(make_context(src, dst), tile_w, tile_h,
                            kStreamPlanName);
}

ExecutionPlan build_service_plan(const ExecContext& ctx, int tile_w, int tile_h,
                                 std::string plan_name, int tile_region_w,
                                 int tile_region_h) {
  FE_EXPECTS(tile_w >= 8 && tile_h >= 8);
  if (tile_region_w == 0) tile_region_w = ctx.dst.width;
  if (tile_region_h == 0) tile_region_h = ctx.dst.height;
  FE_EXPECTS(tile_region_w >= 1 && tile_region_w <= ctx.dst.width);
  FE_EXPECTS(tile_region_h >= 1 && tile_region_h <= ctx.dst.height);

  std::vector<par::Rect> tiles = order_tiles_by_source_locality(
      ctx, par::partition(tile_region_w, tile_region_h,
                          par::PartitionKind::Tiles, 0, tile_w, tile_h));
  ExecutionPlan plan(plan_key(ctx, std::move(plan_name)), std::move(tiles));
  plan.set_kernel(resolve_kernel(ctx, KernelVariant::Scalar));

  Workspace& ws = plan.workspace();
  const std::size_t n = plan.tiles().size();
  // Tiles are stored pre-ordered, so the schedule permutation is identity.
  ws.steal_order.resize(n);
  std::iota(ws.steal_order.begin(), ws.steal_order.end(), 0u);
  ws.bytes_in_estimate = estimate_bytes_in(ctx);
  ws.bytes_out_estimate = estimate_bytes_out(ctx);
  // Pre-size the per-tile slots so the first frame already allocates
  // nothing (begin_frame reuses this capacity from then on).
  plan.instrumentation().begin_frame(n);
  plan.instrumentation().bytes_in = ws.bytes_in_estimate;
  plan.instrumentation().bytes_out = ws.bytes_out_estimate;
  return plan;
}

}  // namespace fisheye::core
