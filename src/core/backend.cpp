#include "core/backend.hpp"

#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "core/tile_order.hpp"
#include "parallel/work_stealing.hpp"
#include "runtime/timer.hpp"
#include "simd/remap_simd.hpp"
#include "util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fisheye::core {

namespace {

/// Stamp the analytic traffic estimate into a plan's frame slots (CPU
/// backends; the simulators overwrite with modeled DMA/DDR counts).
void record_bytes(const ExecutionPlan& plan, const ExecContext& ctx) {
  PlanInstrumentation& inst = plan.instrumentation();
  inst.bytes_in = estimate_bytes_in(ctx);
  inst.bytes_out = estimate_bytes_out(ctx);
  inst.modeled = false;
}

/// Plan state for schedule=steal. The plan's tile vector is already stored
/// in Morton order of the tiles' source-bbox centroids, so `order` is the
/// identity permutation over it; `runs` are the per-worker initial deque
/// runs, balanced by tile area (see par::balanced_runs).
struct StealPlanState {
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> runs;
};

/// Build steal-schedule plan state over `tiles` for a team of `workers`.
std::shared_ptr<StealPlanState> make_steal_state(
    const std::vector<par::Rect>& tiles, unsigned workers) {
  auto st = std::make_shared<StealPlanState>();
  st->order.resize(tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i)
    st->order[i] = static_cast<std::uint32_t>(i);
  st->runs = par::balanced_runs(tiles.size(), workers, [&](std::size_t i) {
    return static_cast<double>(tiles[i].area());
  });
  return st;
}

}  // namespace

std::string MapChoice::spec_text() const {
  if (!set()) return {};
  switch (*mode) {
    case MapMode::FloatLut: return "map=float";
    case MapMode::PackedLut: return "map=packed";
    case MapMode::CompactLut:
      return "map=compact:" + std::to_string(stride);
    case MapMode::OnTheFly: break;  // never produced by parse()
  }
  return {};
}

MapChoice MapChoice::parse(const std::string& value) {
  MapChoice c;
  if (value == "float") {
    c.mode = MapMode::FloatLut;
    return c;
  }
  if (value == "packed") {
    c.mode = MapMode::PackedLut;
    return c;
  }
  const std::string compact = "compact";
  if (value == compact || value.rfind(compact + ":", 0) == 0) {
    c.mode = MapMode::CompactLut;
    if (value.size() > compact.size()) {
      const std::string tail = value.substr(compact.size() + 1);
      int stride = 0;
      try {
        std::size_t pos = 0;
        stride = std::stoi(tail, &pos);
        if (pos != tail.size()) stride = 0;
      } catch (const std::exception&) {
        stride = 0;
      }
      if (stride < 1 || stride > 64 || (stride & (stride - 1)) != 0)
        throw InvalidArgument("map=compact: stride must be a power of two "
                              "in [1, 64], got '" + tail + "'");
      c.stride = stride;
    }
    return c;
  }
  throw InvalidArgument("map=: unknown map format '" + value +
                        "' (valid: float, packed, compact:<stride>)");
}

par::Schedule ScheduleChoice::parse(const std::string& value) {
  if (value == "static") return par::Schedule::Static;
  if (value == "dynamic") return par::Schedule::Dynamic;
  if (value == "guided") return par::Schedule::Guided;
  if (value == "steal") return par::Schedule::Steal;
  throw InvalidArgument("schedule=: unknown schedule '" + value +
                        "' (valid: static, dynamic, guided, steal)");
}

ExecutionPlan Backend::plan(const ExecContext& ctx) {
  std::shared_ptr<const ConvertedMap> converted;
  (void)resolve_map(ctx, converted);  // validates the choice against ctx
  ExecutionPlan p =
      make_plan(ctx, {par::Rect{0, 0, ctx.dst.width, ctx.dst.height}});
  p.set_converted(std::move(converted));
  return p;
}

void Backend::execute(const ExecContext& ctx) {
  if (!cached_plan_.matches(ctx, name())) cached_plan_ = plan(ctx);
  execute(cached_plan_, ctx);
}

ExecutionPlan Backend::make_plan(const ExecContext& ctx,
                                 std::vector<par::Rect> tiles,
                                 std::shared_ptr<void> state) const {
  return ExecutionPlan(plan_key(ctx, name()), std::move(tiles),
                       std::move(state));
}

void Backend::check_plan(const ExecutionPlan& plan,
                         const ExecContext& ctx) const {
  FE_EXPECTS(plan.matches(ctx, name()));
}

ExecContext Backend::resolve_map(
    const ExecContext& ctx,
    std::shared_ptr<const ConvertedMap>& converted) const {
  converted = nullptr;
  if (!map_choice_.set()) return ctx;
  const MapMode want = *map_choice_.mode;
  const bool already =
      want == ctx.mode &&
      (want != MapMode::CompactLut ||
       (ctx.compact != nullptr && ctx.compact->stride == map_choice_.stride));
  if (already) return ctx;
  if (ctx.map == nullptr)
    throw InvalidArgument(name() + ": " + map_choice_.spec_text() +
                          " needs the context's float WarpMap to convert "
                          "from, but the context (mode " +
                          map_mode_name(ctx.mode) + ") carries none");
  if ((want == MapMode::PackedLut || want == MapMode::CompactLut) &&
      ctx.opts.interp != Interp::Bilinear)
    throw InvalidArgument(name() + ": " + map_choice_.spec_text() +
                          " supports bilinear interpolation only");
  auto conv = std::make_shared<ConvertedMap>();
  conv->mode = want;
  switch (want) {
    case MapMode::FloatLut:
      break;  // pointer rewrite only; ctx.map is already present
    case MapMode::PackedLut:
      conv->packed = pack_map(*ctx.map, ctx.src.width, ctx.src.height,
                              map_choice_.frac_bits);
      break;
    case MapMode::CompactLut:
      conv->compact = compact_map(*ctx.map, ctx.src.width, ctx.src.height,
                                  map_choice_.stride, map_choice_.frac_bits);
      break;
    case MapMode::OnTheFly:
      throw InvalidArgument(name() + ": map= cannot select on-the-fly");
  }
  converted = std::move(conv);
  return converted->apply(ctx);
}

ExecContext Backend::effective(const ExecutionPlan& plan,
                               const ExecContext& ctx) noexcept {
  const ConvertedMap* conv = plan.converted();
  return conv != nullptr ? conv->apply(ctx) : ctx;
}

std::string Backend::decorate_spec(std::string spec) const {
  if (!map_choice_.set()) return spec;
  spec += spec.find(':') == std::string::npos ? ':' : ',';
  spec += map_choice_.spec_text();
  return spec;
}

void execute_rect(const ExecContext& ctx, par::Rect rect) {
  switch (ctx.mode) {
    case MapMode::FloatLut:
      FE_EXPECTS(ctx.map != nullptr);
      remap_rect(ctx.src, ctx.dst, *ctx.map, rect, ctx.opts);
      return;
    case MapMode::PackedLut:
      FE_EXPECTS(ctx.packed != nullptr);
      FE_EXPECTS(ctx.opts.interp == Interp::Bilinear);
      remap_packed_rect(ctx.src, ctx.dst, *ctx.packed, rect, ctx.opts.fill);
      return;
    case MapMode::CompactLut:
      FE_EXPECTS(ctx.compact != nullptr);
      FE_EXPECTS(ctx.opts.interp == Interp::Bilinear);
      remap_compact_rect(ctx.src, ctx.dst, *ctx.compact, rect, ctx.opts.fill);
      return;
    case MapMode::OnTheFly:
      FE_EXPECTS(ctx.camera != nullptr && ctx.view != nullptr);
      remap_otf_rect(ctx.src, ctx.dst, *ctx.camera, *ctx.view, rect, ctx.opts,
                     ctx.fast_math);
      return;
  }
  throw InvalidArgument("execute_rect: unknown map mode");
}

void SerialBackend::execute(const ExecutionPlan& plan,
                            const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ExecContext ectx = effective(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  for (std::size_t i = 0; i < plan.tiles().size(); ++i) {
    const rt::Stopwatch sw;
    execute_rect(ectx, plan.tiles()[i]);
    inst.tile_seconds[i] = sw.elapsed_seconds();
  }
  record_bytes(plan, ectx);
}

PoolBackend::PoolBackend(par::ThreadPool& pool) : PoolBackend(pool, Options{}) {}

PoolBackend::PoolBackend(par::ThreadPool& pool, Options options)
    : pool_(pool), options_(options) {}

PoolBackend::PoolBackend(Options options, unsigned threads)
    : owned_pool_(std::make_unique<par::ThreadPool>(threads)),
      pool_(*owned_pool_),
      options_(options) {}

std::string PoolBackend::name() const {
  std::ostringstream os;
  os << "pool:" << par::schedule_name(options_.schedule);
  switch (options_.partition) {
    case par::PartitionKind::RowBlocks: os << ",rows"; break;
    case par::PartitionKind::RowCyclic: os << ",cyclic"; break;
    case par::PartitionKind::Tiles: os << ",tiles"; break;
    case par::PartitionKind::ColumnBlocks: os << ",cols"; break;
  }
  if ((options_.partition == par::PartitionKind::RowBlocks ||
       options_.partition == par::PartitionKind::ColumnBlocks) &&
      options_.chunks != 0)
    os << '=' << options_.chunks;
  if (options_.partition == par::PartitionKind::Tiles)
    os << ",tile=" << options_.tile_w << 'x' << options_.tile_h;
  os << ",threads=" << pool_.size();
  return decorate_spec(os.str());
}

ExecutionPlan PoolBackend::plan(const ExecContext& ctx) {
  std::shared_ptr<const ConvertedMap> converted;
  const ExecContext ectx = resolve_map(ctx, converted);
  int chunks = options_.chunks;
  if (chunks == 0) chunks = static_cast<int>(pool_.size()) * 4;
  std::vector<par::Rect> tiles =
      par::partition(ctx.dst.width, ctx.dst.height, options_.partition,
                     chunks, options_.tile_w, options_.tile_h);
  std::shared_ptr<void> state;
  if (options_.schedule == par::Schedule::Steal) {
    // Reorder the partition by source locality once, at plan time, and
    // pre-split it into the workers' initial deque runs. The effective
    // (post map=) context supplies the source boxes — it is what execute()
    // will actually gather from.
    tiles = order_tiles_by_source_locality(ectx, std::move(tiles));
    state = make_steal_state(tiles, pool_.size());
  }
  ExecutionPlan p = make_plan(ctx, std::move(tiles), std::move(state));
  p.set_converted(std::move(converted));
  return p;
}

void PoolBackend::execute(const ExecutionPlan& plan, const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ExecContext ectx = effective(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  if (options_.schedule == par::Schedule::Steal) {
    const StealPlanState* st = plan.state<StealPlanState>();
    FE_EXPECTS(st != nullptr);
    if (!steal_) steal_ = std::make_unique<par::WorkStealingPool>(pool_);
    par::detail::ErrorSlot errors;
    const par::StealStats ss = steal_->run_ordered(
        st->order.data(), st->order.size(), st->runs, [&](std::size_t i) {
          try {
            const rt::Stopwatch sw;
            execute_rect(ectx, plan.tiles()[i]);
            inst.tile_seconds[i] = sw.elapsed_seconds();
          } catch (...) {
            errors.capture();
          }
        });
    inst.local_tiles = ss.local;
    inst.stolen_tiles = ss.stolen;
    inst.steals = ss.steals;
    record_bytes(plan, ectx);
    errors.rethrow_if_set();
    return;
  }
  par::parallel_for_each(
      pool_, plan.tiles().size(),
      [&](std::size_t i) {
        const rt::Stopwatch sw;
        execute_rect(ectx, plan.tiles()[i]);
        inst.tile_seconds[i] = sw.elapsed_seconds();
      },
      {options_.schedule, 1});
  record_bytes(plan, ectx);
}

SimdBackend::SimdBackend(unsigned threads) {
  if (threads != 1) {
    owned_pool_ = std::make_unique<par::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

std::string SimdBackend::name() const {
  std::ostringstream os;
  os << "simd:threads=" << (pool_ != nullptr ? pool_->size() : 1);
  return decorate_spec(os.str());
}

ExecutionPlan SimdBackend::plan(const ExecContext& ctx) {
  std::shared_ptr<const ConvertedMap> converted;
  const ExecContext ectx = resolve_map(ctx, converted);
  // Two SoA kernels: float LUT and compact LUT (see remap_simd.hpp).
  FE_EXPECTS((ectx.mode == MapMode::FloatLut && ectx.map != nullptr) ||
             (ectx.mode == MapMode::CompactLut && ectx.compact != nullptr));
  FE_EXPECTS(ectx.opts.interp == Interp::Bilinear);
  // The SoA kernels support constant fill only.
  FE_EXPECTS(ectx.opts.border == img::BorderMode::Constant);
  ExecutionPlan p =
      pool_ == nullptr
          ? make_plan(ctx, {par::Rect{0, 0, ctx.dst.width, ctx.dst.height}})
          : make_plan(ctx,
                      par::partition(ctx.dst.width, ctx.dst.height,
                                     par::PartitionKind::RowBlocks,
                                     static_cast<int>(pool_->size()) * 4));
  p.set_converted(std::move(converted));
  return p;
}

void SimdBackend::execute(const ExecutionPlan& plan, const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ExecContext ectx = effective(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  const auto run_tile = [&](std::size_t i) {
    const rt::Stopwatch sw;
    if (ectx.mode == MapMode::CompactLut)
      simd::remap_compact_soa(ectx.src, ectx.dst, *ectx.compact,
                              plan.tiles()[i], ectx.opts.fill);
    else
      simd::remap_bilinear_soa(ectx.src, ectx.dst, *ectx.map, plan.tiles()[i],
                               ectx.opts.fill);
    inst.tile_seconds[i] = sw.elapsed_seconds();
  };
  if (pool_ == nullptr)
    run_tile(0);
  else
    par::parallel_for_each(*pool_, plan.tiles().size(), run_tile,
                           {par::Schedule::Dynamic, 1});
  record_bytes(plan, ectx);
}

#ifdef _OPENMP
std::string OpenMpBackend::name() const {
  std::ostringstream os;
  os << "openmp";
  char sep = ':';
  if (threads_ > 0) {
    os << sep << "threads=" << threads_;
    sep = ',';
  }
  if (schedule_ != par::Schedule::Static)
    os << sep << "schedule=" << par::schedule_name(schedule_);
  return decorate_spec(os.str());
}

ExecutionPlan OpenMpBackend::plan(const ExecContext& ctx) {
  std::shared_ptr<const ConvertedMap> converted;
  const ExecContext ectx = resolve_map(ctx, converted);
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
  std::vector<par::Rect> tiles;
  std::shared_ptr<void> state;
  switch (schedule_) {
    case par::Schedule::Static:
      // One contiguous row block per thread, mirroring schedule(static)
      // over rows; planned once instead of re-derived by the OpenMP
      // runtime.
      tiles = par::partition(ctx.dst.width, ctx.dst.height,
                             par::PartitionKind::RowBlocks, threads);
      break;
    case par::Schedule::Dynamic:
    case par::Schedule::Guided:
      // Finer row blocks so the OpenMP runtime has slack to balance with.
      tiles = par::partition(ctx.dst.width, ctx.dst.height,
                             par::PartitionKind::RowBlocks, threads * 4);
      break;
    case par::Schedule::Steal:
      // Square tiles in source-locality order, split into the team's
      // initial deque runs — same planning as PoolBackend's steal path.
      tiles = order_tiles_by_source_locality(
          ectx, par::partition(ctx.dst.width, ctx.dst.height,
                               par::PartitionKind::Tiles, 0, 64, 64));
      state = make_steal_state(tiles, static_cast<unsigned>(threads));
      break;
  }
  ExecutionPlan p = make_plan(ctx, std::move(tiles), std::move(state));
  p.set_converted(std::move(converted));
  return p;
}

void OpenMpBackend::execute(const ExecutionPlan& plan,
                            const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ExecContext ectx = effective(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
  const int n = static_cast<int>(plan.tiles().size());
  if (schedule_ == par::Schedule::Steal) {
    const StealPlanState* st = plan.state<StealPlanState>();
    FE_EXPECTS(st != nullptr);
    const unsigned team = static_cast<unsigned>(threads);
    if (!steal_ || steal_->workers() != team)
      steal_ = std::make_unique<par::StealScheduler>(team);
    // Runs were planned for `team` workers; if the OpenMP max-thread count
    // moved under a threads-unspecified spec since planning, resplit.
    const std::vector<std::size_t>* runs = &st->runs;
    std::vector<std::size_t> resplit;
    if (st->runs.size() != static_cast<std::size_t>(team) + 1) {
      resplit = par::balanced_runs(plan.tiles().size(), team,
                                   [&](std::size_t i) {
                                     return static_cast<double>(
                                         plan.tiles()[i].area());
                                   });
      runs = &resplit;
    }
    steal_->begin_frame(st->order.data(), st->order.size(), *runs);
    par::detail::ErrorSlot errors;
#pragma omp parallel num_threads(threads)
    {
      steal_->work(static_cast<unsigned>(omp_get_thread_num()),
                   [&](std::size_t i) {
                     try {
                       const rt::Stopwatch sw;
                       execute_rect(ectx, plan.tiles()[i]);
                       inst.tile_seconds[i] = sw.elapsed_seconds();
                     } catch (...) {
                       errors.capture();
                     }
                   });
    }
    const par::StealStats ss = steal_->stats();
    inst.local_tiles = ss.local;
    inst.stolen_tiles = ss.stolen;
    inst.steals = ss.steals;
    record_bytes(plan, ectx);
    errors.rethrow_if_set();
    return;
  }
  const auto run_tile = [&](int i) {
    const rt::Stopwatch sw;
    execute_rect(ectx, plan.tiles()[static_cast<std::size_t>(i)]);
    inst.tile_seconds[static_cast<std::size_t>(i)] = sw.elapsed_seconds();
  };
  switch (schedule_) {
    case par::Schedule::Dynamic: {
#pragma omp parallel for schedule(dynamic) num_threads(threads)
      for (int i = 0; i < n; ++i) run_tile(i);
      break;
    }
    case par::Schedule::Guided: {
#pragma omp parallel for schedule(guided) num_threads(threads)
      for (int i = 0; i < n; ++i) run_tile(i);
      break;
    }
    default: {
#pragma omp parallel for schedule(static) num_threads(threads)
      for (int i = 0; i < n; ++i) run_tile(i);
      break;
    }
  }
  record_bytes(plan, ectx);
}
#endif

}  // namespace fisheye::core
