#include "core/backend.hpp"

#include <sstream>

#include "simd/remap_simd.hpp"
#include "util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fisheye::core {

void execute_rect(const ExecContext& ctx, par::Rect rect) {
  switch (ctx.mode) {
    case MapMode::FloatLut:
      FE_EXPECTS(ctx.map != nullptr);
      remap_rect(ctx.src, ctx.dst, *ctx.map, rect, ctx.opts);
      return;
    case MapMode::PackedLut:
      FE_EXPECTS(ctx.packed != nullptr);
      FE_EXPECTS(ctx.opts.interp == Interp::Bilinear);
      remap_packed_rect(ctx.src, ctx.dst, *ctx.packed, rect, ctx.opts.fill);
      return;
    case MapMode::OnTheFly:
      FE_EXPECTS(ctx.camera != nullptr && ctx.view != nullptr);
      remap_otf_rect(ctx.src, ctx.dst, *ctx.camera, *ctx.view, rect, ctx.opts,
                     ctx.fast_math);
      return;
  }
  throw InvalidArgument("execute_rect: unknown map mode");
}

void SerialBackend::execute(const ExecContext& ctx) {
  execute_rect(ctx, {0, 0, ctx.dst.width, ctx.dst.height});
}

PoolBackend::PoolBackend(par::ThreadPool& pool) : PoolBackend(pool, Options{}) {}

PoolBackend::PoolBackend(par::ThreadPool& pool, Options options)
    : pool_(pool), options_(options) {}

std::string PoolBackend::name() const {
  std::ostringstream os;
  os << "pool(" << pool_.size() << "t," << schedule_name(options_.schedule)
     << ',' << par::partition_name(options_.partition) << ')';
  return os.str();
}

void PoolBackend::execute(const ExecContext& ctx) {
  int chunks = options_.chunks;
  if (chunks == 0) chunks = static_cast<int>(pool_.size()) * 4;
  const std::vector<par::Rect> rects =
      par::partition(ctx.dst.width, ctx.dst.height, options_.partition,
                     chunks, options_.tile_w, options_.tile_h);
  par::parallel_for_each(
      pool_, rects.size(),
      [&](std::size_t i) { execute_rect(ctx, rects[i]); },
      {options_.schedule, 1});
}

std::string SimdBackend::name() const {
  std::ostringstream os;
  os << "simd";
  if (pool_ != nullptr) os << '(' << pool_->size() << "t)";
  return os.str();
}

void SimdBackend::execute(const ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == Interp::Bilinear);
  // The SoA kernel supports constant fill only (see remap_simd.hpp).
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  const par::Rect whole{0, 0, ctx.dst.width, ctx.dst.height};
  if (pool_ == nullptr) {
    simd::remap_bilinear_soa(ctx.src, ctx.dst, *ctx.map, whole, ctx.opts.fill);
    return;
  }
  const std::vector<par::Rect> rects =
      par::partition(ctx.dst.width, ctx.dst.height,
                     par::PartitionKind::RowBlocks,
                     static_cast<int>(pool_->size()) * 4);
  par::parallel_for_each(
      *pool_, rects.size(),
      [&](std::size_t i) {
        simd::remap_bilinear_soa(ctx.src, ctx.dst, *ctx.map, rects[i],
                                 ctx.opts.fill);
      },
      {par::Schedule::Dynamic, 1});
}

#ifdef _OPENMP
void OpenMpBackend::execute(const ExecContext& ctx) {
  const int rows = ctx.dst.height;
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(threads)
  for (int y = 0; y < rows; ++y)
    execute_rect(ctx, {0, y, ctx.dst.width, y + 1});
}
#endif

}  // namespace fisheye::core
