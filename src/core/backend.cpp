#include "core/backend.hpp"

#include <sstream>
#include <utility>

#include "runtime/timer.hpp"
#include "simd/remap_simd.hpp"
#include "util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fisheye::core {

namespace {

/// Stamp the analytic traffic estimate into a plan's frame slots (CPU
/// backends; the simulators overwrite with modeled DMA/DDR counts).
void record_bytes(const ExecutionPlan& plan, const ExecContext& ctx) {
  PlanInstrumentation& inst = plan.instrumentation();
  inst.bytes_in = estimate_bytes_in(ctx);
  inst.bytes_out = estimate_bytes_out(ctx);
  inst.modeled = false;
}

}  // namespace

ExecutionPlan Backend::plan(const ExecContext& ctx) {
  return make_plan(ctx, {par::Rect{0, 0, ctx.dst.width, ctx.dst.height}});
}

void Backend::execute(const ExecContext& ctx) {
  if (!cached_plan_.matches(ctx, name())) cached_plan_ = plan(ctx);
  execute(cached_plan_, ctx);
}

ExecutionPlan Backend::make_plan(const ExecContext& ctx,
                                 std::vector<par::Rect> tiles,
                                 std::shared_ptr<void> state) const {
  return ExecutionPlan(plan_key(ctx, name()), std::move(tiles),
                       std::move(state));
}

void Backend::check_plan(const ExecutionPlan& plan,
                         const ExecContext& ctx) const {
  FE_EXPECTS(plan.matches(ctx, name()));
}

void execute_rect(const ExecContext& ctx, par::Rect rect) {
  switch (ctx.mode) {
    case MapMode::FloatLut:
      FE_EXPECTS(ctx.map != nullptr);
      remap_rect(ctx.src, ctx.dst, *ctx.map, rect, ctx.opts);
      return;
    case MapMode::PackedLut:
      FE_EXPECTS(ctx.packed != nullptr);
      FE_EXPECTS(ctx.opts.interp == Interp::Bilinear);
      remap_packed_rect(ctx.src, ctx.dst, *ctx.packed, rect, ctx.opts.fill);
      return;
    case MapMode::OnTheFly:
      FE_EXPECTS(ctx.camera != nullptr && ctx.view != nullptr);
      remap_otf_rect(ctx.src, ctx.dst, *ctx.camera, *ctx.view, rect, ctx.opts,
                     ctx.fast_math);
      return;
  }
  throw InvalidArgument("execute_rect: unknown map mode");
}

void SerialBackend::execute(const ExecutionPlan& plan,
                            const ExecContext& ctx) {
  check_plan(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  for (std::size_t i = 0; i < plan.tiles().size(); ++i) {
    const rt::Stopwatch sw;
    execute_rect(ctx, plan.tiles()[i]);
    inst.tile_seconds[i] = sw.elapsed_seconds();
  }
  record_bytes(plan, ctx);
}

PoolBackend::PoolBackend(par::ThreadPool& pool) : PoolBackend(pool, Options{}) {}

PoolBackend::PoolBackend(par::ThreadPool& pool, Options options)
    : pool_(pool), options_(options) {}

PoolBackend::PoolBackend(Options options, unsigned threads)
    : owned_pool_(std::make_unique<par::ThreadPool>(threads)),
      pool_(*owned_pool_),
      options_(options) {}

std::string PoolBackend::name() const {
  std::ostringstream os;
  os << "pool:" << par::schedule_name(options_.schedule);
  switch (options_.partition) {
    case par::PartitionKind::RowBlocks: os << ",rows"; break;
    case par::PartitionKind::RowCyclic: os << ",cyclic"; break;
    case par::PartitionKind::Tiles: os << ",tiles"; break;
    case par::PartitionKind::ColumnBlocks: os << ",cols"; break;
  }
  if ((options_.partition == par::PartitionKind::RowBlocks ||
       options_.partition == par::PartitionKind::ColumnBlocks) &&
      options_.chunks != 0)
    os << '=' << options_.chunks;
  if (options_.partition == par::PartitionKind::Tiles)
    os << ",tile=" << options_.tile_w << 'x' << options_.tile_h;
  os << ",threads=" << pool_.size();
  return os.str();
}

ExecutionPlan PoolBackend::plan(const ExecContext& ctx) {
  int chunks = options_.chunks;
  if (chunks == 0) chunks = static_cast<int>(pool_.size()) * 4;
  return make_plan(ctx, par::partition(ctx.dst.width, ctx.dst.height,
                                       options_.partition, chunks,
                                       options_.tile_w, options_.tile_h));
}

void PoolBackend::execute(const ExecutionPlan& plan, const ExecContext& ctx) {
  check_plan(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  par::parallel_for_each(
      pool_, plan.tiles().size(),
      [&](std::size_t i) {
        const rt::Stopwatch sw;
        execute_rect(ctx, plan.tiles()[i]);
        inst.tile_seconds[i] = sw.elapsed_seconds();
      },
      {options_.schedule, 1});
  record_bytes(plan, ctx);
}

SimdBackend::SimdBackend(unsigned threads) {
  if (threads != 1) {
    owned_pool_ = std::make_unique<par::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

std::string SimdBackend::name() const {
  std::ostringstream os;
  os << "simd:threads=" << (pool_ != nullptr ? pool_->size() : 1);
  return os.str();
}

ExecutionPlan SimdBackend::plan(const ExecContext& ctx) {
  FE_EXPECTS(ctx.mode == MapMode::FloatLut && ctx.map != nullptr);
  FE_EXPECTS(ctx.opts.interp == Interp::Bilinear);
  // The SoA kernel supports constant fill only (see remap_simd.hpp).
  FE_EXPECTS(ctx.opts.border == img::BorderMode::Constant);
  if (pool_ == nullptr)
    return make_plan(ctx, {par::Rect{0, 0, ctx.dst.width, ctx.dst.height}});
  return make_plan(ctx, par::partition(ctx.dst.width, ctx.dst.height,
                                       par::PartitionKind::RowBlocks,
                                       static_cast<int>(pool_->size()) * 4));
}

void SimdBackend::execute(const ExecutionPlan& plan, const ExecContext& ctx) {
  check_plan(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  const auto run_tile = [&](std::size_t i) {
    const rt::Stopwatch sw;
    simd::remap_bilinear_soa(ctx.src, ctx.dst, *ctx.map, plan.tiles()[i],
                             ctx.opts.fill);
    inst.tile_seconds[i] = sw.elapsed_seconds();
  };
  if (pool_ == nullptr)
    run_tile(0);
  else
    par::parallel_for_each(*pool_, plan.tiles().size(), run_tile,
                           {par::Schedule::Dynamic, 1});
  record_bytes(plan, ctx);
}

#ifdef _OPENMP
std::string OpenMpBackend::name() const {
  if (threads_ <= 0) return "openmp";
  std::ostringstream os;
  os << "openmp:threads=" << threads_;
  return os.str();
}

ExecutionPlan OpenMpBackend::plan(const ExecContext& ctx) {
  // One contiguous row block per thread, mirroring schedule(static) over
  // rows; planned once instead of re-derived by the OpenMP runtime.
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
  return make_plan(ctx, par::partition(ctx.dst.width, ctx.dst.height,
                                       par::PartitionKind::RowBlocks,
                                       threads));
}

void OpenMpBackend::execute(const ExecutionPlan& plan,
                            const ExecContext& ctx) {
  check_plan(plan, ctx);
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
  const int n = static_cast<int>(plan.tiles().size());
#pragma omp parallel for schedule(static) num_threads(threads)
  for (int i = 0; i < n; ++i) {
    const rt::Stopwatch sw;
    execute_rect(ctx, plan.tiles()[static_cast<std::size_t>(i)]);
    inst.tile_seconds[static_cast<std::size_t>(i)] = sw.elapsed_seconds();
  }
  record_bytes(plan, ctx);
}
#endif

}  // namespace fisheye::core
