#include "core/backend.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "core/autotune.hpp"
#include "core/kernel.hpp"
#include "core/tile_order.hpp"
#include "parallel/work_stealing.hpp"
#include "runtime/timer.hpp"
#include "simd/remap_gather.hpp"
#include "simd/remap_simd.hpp"
#include "util/error.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fisheye::core {

namespace {

/// Stamp the plan-time analytic traffic estimate into a plan's frame slots
/// (CPU backends; the simulators overwrite with modeled DMA/DDR counts).
void record_bytes(const ExecutionPlan& plan) {
  PlanInstrumentation& inst = plan.instrumentation();
  const Workspace& ws = plan.workspace();
  inst.bytes_in = ws.bytes_in_estimate;
  inst.bytes_out = ws.bytes_out_estimate;
  inst.modeled = false;
}

/// Fill a plan workspace's steal-schedule slots for a team of `workers`.
/// The workspace's tile vector is already stored in Morton order of the
/// tiles' source-bbox centroids, so `steal_order` is the identity
/// permutation over it; `steal_runs` are the per-worker initial deque
/// runs, balanced by tile area (see par::balanced_runs).
void init_steal_state(Workspace& ws, unsigned workers) {
  ws.steal_order.resize(ws.tiles.size());
  std::iota(ws.steal_order.begin(), ws.steal_order.end(), 0u);
  par::balanced_runs_into(ws.steal_runs, ws.tiles.size(), workers,
                          [&](std::size_t i) {
                            return static_cast<double>(ws.tiles[i].area());
                          });
}

}  // namespace

std::string MapChoice::spec_text() const {
  if (!set()) return {};
  switch (*mode) {
    case MapMode::FloatLut: return "map=float";
    case MapMode::PackedLut: return "map=packed";
    case MapMode::CompactLut:
      return "map=compact:" + std::to_string(stride);
    case MapMode::OnTheFly: break;  // never produced by parse()
  }
  return {};
}

MapChoice MapChoice::parse(const std::string& value) {
  MapChoice c;
  if (value == "float") {
    c.mode = MapMode::FloatLut;
    return c;
  }
  if (value == "packed") {
    c.mode = MapMode::PackedLut;
    return c;
  }
  const std::string compact = "compact";
  if (value == compact || value.rfind(compact + ":", 0) == 0) {
    c.mode = MapMode::CompactLut;
    if (value.size() > compact.size()) {
      const std::string tail = value.substr(compact.size() + 1);
      int stride = 0;
      bool integral = true;
      try {
        std::size_t pos = 0;
        stride = std::stoi(tail, &pos);
        if (pos != tail.size()) integral = false;
      } catch (const std::exception&) {
        integral = false;
      }
      if (!integral)
        throw InvalidArgument("map=compact: stride expects an integer, got '" +
                              tail + "'");
      if (stride < 1 || stride > 64 || (stride & (stride - 1)) != 0)
        throw InvalidArgument("map=compact: stride must be a power of two "
                              "in [1, 64], got '" + tail + "'");
      c.stride = stride;
    }
    return c;
  }
  throw InvalidArgument("map=: unknown map format '" + value +
                        "' (valid: float, packed, compact:<stride>)");
}

KernelVariant DatapathChoice::parse(const std::string& value) {
  if (value == "scalar") return KernelVariant::Scalar;
  if (value == "soa") return KernelVariant::SimdSoa;
  if (value == "gather") return KernelVariant::SimdGather;
  throw InvalidArgument("datapath=: unknown datapath '" + value +
                        "' (valid: scalar, soa, gather)");
}

const char* DatapathChoice::token(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::Scalar: return "scalar";
    case KernelVariant::SimdSoa: return "soa";
    case KernelVariant::SimdGather: return "gather";
  }
  return "?";
}

std::string TunedSpec::token() const {
  std::string out;
  out += datapath ? DatapathChoice::token(*datapath) : "-";
  out += '/';
  out += strip > 0 ? std::to_string(strip) : "-";
  out += '/';
  if (tile_w > 0 && tile_h > 0)
    out += std::to_string(tile_w) + 'x' + std::to_string(tile_h);
  else
    out += '-';
  out += '/';
  if (map) {
    // MapChoice::spec_text() is "map=<token>"; the slot wants the token.
    const std::string m = map->spec_text();
    out += m.substr(m.find('=') + 1);
  } else {
    out += '-';
  }
  return out;
}

TunedSpec TunedSpec::parse(const std::string& value) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = value.find('/', start);
    if (pos == std::string::npos) {
      parts.push_back(value.substr(start));
      break;
    }
    parts.push_back(value.substr(start, pos - start));
    start = pos + 1;
  }
  if (parts.size() != 4)
    throw InvalidArgument("tuned=: expected 'auto' or " +
                          std::string("<datapath|->/<strip|->/<WxH|->/") +
                          "<map|->, got '" + value + "'");
  TunedSpec t;
  try {
    if (parts[0] != "-") t.datapath = DatapathChoice::parse(parts[0]);
    if (parts[1] != "-") {
      std::size_t used = 0;
      t.strip = std::stoi(parts[1], &used);
      if (used != parts[1].size() || t.strip < 1)
        throw InvalidArgument("tuned=: strip expects a positive integer, "
                              "got '" + parts[1] + "'");
    }
    if (parts[2] != "-") {
      const std::size_t x = parts[2].find('x');
      std::size_t uw = 0, uh = 0;
      if (x == std::string::npos)
        throw InvalidArgument("tuned=: tile expects WxH, got '" + parts[2] +
                              "'");
      const std::string ws = parts[2].substr(0, x);
      const std::string hs = parts[2].substr(x + 1);
      t.tile_w = std::stoi(ws, &uw);
      t.tile_h = std::stoi(hs, &uh);
      if (uw != ws.size() || uh != hs.size() || t.tile_w < 1 || t.tile_h < 1)
        throw InvalidArgument("tuned=: tile expects WxH, got '" + parts[2] +
                              "'");
    }
    if (parts[3] != "-") t.map = MapChoice::parse(parts[3]);
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    if (what.rfind("tuned=", 0) == 0) throw;
    throw InvalidArgument("tuned=: " + what);
  } catch (const std::exception&) {
    throw InvalidArgument("tuned=: malformed token '" + value + "'");
  }
  return t;
}

std::string TunedChoice::spec_text() const {
  if (!requested) return {};
  return "tuned=" + (pending ? std::string("auto") : spec.token());
}

TunedChoice TunedChoice::parse(const std::string& value) {
  TunedChoice c;
  c.requested = true;
  if (value == "auto") {
    c.pending = true;
    return c;
  }
  c.pending = false;
  c.spec = TunedSpec::parse(value);
  return c;
}

par::Schedule ScheduleChoice::parse(const std::string& value) {
  if (value == "static") return par::Schedule::Static;
  if (value == "dynamic") return par::Schedule::Dynamic;
  if (value == "guided") return par::Schedule::Guided;
  if (value == "steal") return par::Schedule::Steal;
  throw InvalidArgument("schedule=: unknown schedule '" + value +
                        "' (valid: static, dynamic, guided, steal)");
}

ExecutionPlan Backend::plan(const ExecContext& ctx) {
  std::shared_ptr<const ConvertedMap> converted;
  (void)resolve_map(ctx, converted);  // validates the choice against ctx
  return make_plan(ctx, {par::Rect{0, 0, ctx.dst.width, ctx.dst.height}},
                   nullptr, std::move(converted));
}

void Backend::execute(const ExecContext& ctx) {
  if (!cached_plan_.matches(ctx, cached_name())) cached_plan_ = plan(ctx);
  execute(cached_plan_, ctx);
}

const std::string& Backend::cached_name() const {
  if (name_cache_.empty()) name_cache_ = name();
  return name_cache_;
}

ExecutionPlan Backend::make_plan(const ExecContext& ctx,
                                 std::vector<par::Rect> tiles,
                                 std::shared_ptr<void> state,
                                 std::shared_ptr<const ConvertedMap> converted,
                                 KernelVariant variant, int soa_strip) const {
  ExecutionPlan p(plan_key(ctx, cached_name()), std::move(tiles),
                  std::move(state));
  const ExecContext ectx = converted ? converted->apply(ctx) : ctx;
  p.set_converted(std::move(converted));
  p.set_kernel(resolve_kernel(ectx, variant, soa_strip));
  Workspace& ws = p.workspace();
  ws.bytes_in_estimate = estimate_bytes_in(ectx);
  ws.bytes_out_estimate = estimate_bytes_out(ectx);
  return p;
}

void Backend::check_plan(const ExecutionPlan& plan,
                         const ExecContext& ctx) const {
  FE_EXPECTS(plan.matches(ctx, cached_name()));
}

ExecContext Backend::resolve_map(
    const ExecContext& ctx,
    std::shared_ptr<const ConvertedMap>& converted) const {
  return resolve_map(ctx, converted, map_choice_);
}

ExecContext Backend::resolve_map(
    const ExecContext& ctx, std::shared_ptr<const ConvertedMap>& converted,
    const MapChoice& choice) const {
  converted = nullptr;
  if (!choice.set()) return ctx;
  const MapMode want = *choice.mode;
  const bool already =
      want == ctx.mode &&
      (want != MapMode::CompactLut ||
       (ctx.compact != nullptr && ctx.compact->stride == choice.stride));
  if (already) return ctx;
  if (ctx.map == nullptr)
    throw InvalidArgument(name() + ": " + choice.spec_text() +
                          " needs the context's float WarpMap to convert "
                          "from, but the context (mode " +
                          map_mode_name(ctx.mode) + ") carries none");
  if ((want == MapMode::PackedLut || want == MapMode::CompactLut) &&
      ctx.opts.interp != Interp::Bilinear)
    throw InvalidArgument(name() + ": " + choice.spec_text() +
                          " supports bilinear interpolation only");
  auto conv = std::make_shared<ConvertedMap>();
  conv->mode = want;
  if (want == MapMode::PackedLut) {
    conv->packed = pack_map(*ctx.map, ctx.src.width, ctx.src.height,
                            choice.frac_bits);
  } else if (want == MapMode::CompactLut) {
    conv->compact = compact_map(*ctx.map, ctx.src.width, ctx.src.height,
                                choice.stride, choice.frac_bits);
  } else if (want == MapMode::OnTheFly) {
    throw InvalidArgument(name() + ": map= cannot select on-the-fly");
  }
  // map=float is a pointer rewrite only; ctx.map is already present.
  converted = std::move(conv);
  return converted->apply(ctx);
}

std::string Backend::decorate_spec(std::string spec) const {
  const auto append = [&spec](const std::string& opt) {
    if (opt.empty()) return;
    spec += spec.find(':') == std::string::npos ? ':' : ',';
    spec += opt;
  };
  append(map_choice_.spec_text());
  append(tuned_.spec_text());
  return spec;
}

void SerialBackend::execute(const ExecutionPlan& plan,
                            const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ResolvedKernel& kernel = plan.kernel();
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  for (std::size_t i = 0; i < plan.tiles().size(); ++i) {
    const rt::Stopwatch sw;
    kernel(ctx.src, ctx.dst, plan.tiles()[i]);
    inst.tile_seconds[i] = sw.elapsed_seconds();
  }
  record_bytes(plan);
}

PoolBackend::PoolBackend(par::ThreadPool& pool) : PoolBackend(pool, Options{}) {}

PoolBackend::PoolBackend(par::ThreadPool& pool, Options options)
    : pool_(pool), options_(options) {}

PoolBackend::PoolBackend(Options options, unsigned threads)
    : owned_pool_(std::make_unique<par::ThreadPool>(threads)),
      pool_(*owned_pool_),
      options_(options) {}

std::string PoolBackend::name() const {
  std::ostringstream os;
  os << "pool:" << par::schedule_name(options_.schedule);
  switch (options_.partition) {
    case par::PartitionKind::RowBlocks: os << ",rows"; break;
    case par::PartitionKind::RowCyclic: os << ",cyclic"; break;
    case par::PartitionKind::Tiles: os << ",tiles"; break;
    case par::PartitionKind::ColumnBlocks: os << ",cols"; break;
  }
  if ((options_.partition == par::PartitionKind::RowBlocks ||
       options_.partition == par::PartitionKind::ColumnBlocks) &&
      options_.chunks != 0)
    os << '=' << options_.chunks;
  if (options_.partition == par::PartitionKind::Tiles)
    os << ",tile=" << options_.tile_w << 'x' << options_.tile_h;
  os << ",threads=" << pool_.size();
  return decorate_spec(os.str());
}

ExecutionPlan PoolBackend::plan(const ExecContext& ctx) {
  maybe_autotune(ctx);
  const TunedChoice& t = tuned();
  return plan_with(ctx, t.requested && !t.pending ? t.spec : TunedSpec{});
}

ExecutionPlan PoolBackend::plan_with(const ExecContext& ctx,
                                     const TunedSpec& t) {
  std::shared_ptr<const ConvertedMap> converted;
  const ExecContext ectx =
      resolve_map(ctx, converted, t.map ? *t.map : map_choice());
  int chunks = options_.chunks;
  if (chunks == 0) chunks = static_cast<int>(pool_.size()) * 4;
  const int tile_w = t.tile_w > 0 ? t.tile_w : options_.tile_w;
  const int tile_h = t.tile_h > 0 ? t.tile_h : options_.tile_h;
  std::vector<par::Rect> tiles =
      par::partition(ctx.dst.width, ctx.dst.height, options_.partition,
                     chunks, tile_w, tile_h);
  const bool steal = options_.schedule == par::Schedule::Steal;
  if (steal) {
    // Reorder the partition by source locality once, at plan time, and
    // pre-split it into the workers' initial deque runs. The effective
    // (post map=) context supplies the source boxes — it is what execute()
    // will actually gather from.
    tiles = order_tiles_by_source_locality(ectx, std::move(tiles));
  }
  ExecutionPlan p =
      make_plan(ctx, std::move(tiles), nullptr, std::move(converted),
                t.datapath.value_or(KernelVariant::Scalar), t.strip);
  if (steal) init_steal_state(p.workspace(), pool_.size());
  return p;
}

void PoolBackend::maybe_autotune(const ExecContext& ctx) {
  if (!tuned().requested || !tuned().pending) return;
  // The pool backend's measured axis is the tile shape; it only exists
  // under a Tiles partition (row/cyclic decompositions ignore tile=).
  if (options_.partition != par::PartitionKind::Tiles) {
    resolve_tuned(TunedSpec{});
    return;
  }
  std::vector<AutotuneCandidate> cands;
  cands.push_back({TunedSpec{}, "default"});
  constexpr int kTiles[][2] = {{32, 32}, {64, 64}, {128, 64}, {128, 32}};
  for (const auto& wh : kTiles) {
    TunedSpec t;
    t.tile_w = wh[0];
    t.tile_h = wh[1];
    cands.push_back({t, "tile " + t.token()});
  }
  const auto best = autotune_select(
      ctx, autotune_cache_key(ctx, cached_name()), cands,
      [this](const ExecContext& c, const TunedSpec& t) {
        return plan_with(c, t);
      },
      [this](const ExecutionPlan& p, const ExecContext& c) { execute(p, c); });
  if (best) resolve_tuned(*best);
}

void PoolBackend::execute(const ExecutionPlan& plan, const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ResolvedKernel& kernel = plan.kernel();
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  if (options_.schedule == par::Schedule::Steal) {
    const Workspace& ws = plan.workspace();
    if (!steal_) steal_ = std::make_unique<par::WorkStealingPool>(pool_);
    par::detail::ErrorSlot errors;
    const par::StealStats ss = steal_->run_ordered(
        ws.steal_order.data(), ws.steal_order.size(), ws.steal_runs,
        [&](std::size_t i) {
          try {
            const rt::Stopwatch sw;
            kernel(ctx.src, ctx.dst, plan.tiles()[i]);
            inst.tile_seconds[i] = sw.elapsed_seconds();
          } catch (...) {
            errors.capture();
          }
        });
    inst.local_tiles = ss.local;
    inst.stolen_tiles = ss.stolen;
    inst.steals = ss.steals;
    record_bytes(plan);
    errors.rethrow_if_set();
    return;
  }
  par::parallel_for_each(
      pool_, plan.tiles().size(),
      [&](std::size_t i) {
        const rt::Stopwatch sw;
        kernel(ctx.src, ctx.dst, plan.tiles()[i]);
        inst.tile_seconds[i] = sw.elapsed_seconds();
      },
      {options_.schedule, 1});
  record_bytes(plan);
}

SimdBackend::SimdBackend(unsigned threads) {
  if (threads != 1) {
    owned_pool_ = std::make_unique<par::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

void SimdBackend::set_datapath(KernelVariant v) {
  datapath_ = v;
  clear_name_cache();
}

std::string SimdBackend::name() const {
  std::ostringstream os;
  os << "simd:threads=" << (pool_ != nullptr ? pool_->size() : 1);
  if (datapath_ != KernelVariant::SimdSoa)
    os << ",datapath=" << DatapathChoice::token(datapath_);
  return decorate_spec(os.str());
}

ExecutionPlan SimdBackend::plan(const ExecContext& ctx) {
  maybe_autotune(ctx);
  const TunedChoice& t = tuned();
  return plan_with(ctx, t.requested && !t.pending ? t.spec : TunedSpec{});
}

ExecutionPlan SimdBackend::plan_with(const ExecContext& ctx,
                                     const TunedSpec& t) {
  std::shared_ptr<const ConvertedMap> converted;
  (void)resolve_map(ctx, converted, t.map ? *t.map : map_choice());
  // SoA/gather strip kernels — float, packed (gather only) and compact
  // LUTs, bilinear, constant border; resolve_kernel rejects everything
  // else and effective_variant() degrades gather off-AVX2.
  std::vector<par::Rect> tiles =
      pool_ == nullptr
          ? std::vector<par::Rect>{par::Rect{0, 0, ctx.dst.width,
                                             ctx.dst.height}}
          : par::partition(ctx.dst.width, ctx.dst.height,
                           par::PartitionKind::RowBlocks,
                           static_cast<int>(pool_->size()) * 4);
  ExecutionPlan p =
      make_plan(ctx, std::move(tiles), nullptr, std::move(converted),
                t.datapath.value_or(datapath_), t.strip);
  // One SoA strip scratch per lane, owned by the plan: tiles borrow their
  // lane's scratch instead of burning ~11 KB of stack per tile.
  p.workspace().soa.resize(pool_ != nullptr ? pool_->size() : 1);
  return p;
}

void SimdBackend::maybe_autotune(const ExecContext& ctx) {
  if (!tuned().requested || !tuned().pending) return;
  std::vector<AutotuneCandidate> cands;
  std::vector<KernelVariant> variants{KernelVariant::SimdSoa};
  if (simd::gather_available())
    variants.push_back(KernelVariant::SimdGather);
  for (const KernelVariant v : variants) {
    for (const int strip : {128, simd::kSoaStrip}) {
      TunedSpec t;
      t.datapath = v;
      t.strip = strip;
      cands.push_back({t, t.token()});
    }
  }
  // Map-representation candidate: trading the float LUT for a compact
  // grid often wins on bandwidth; only probed when the context can
  // convert and the user didn't pin map= explicitly.
  if (!map_choice().set() && ctx.mode == MapMode::FloatLut &&
      ctx.map != nullptr && ctx.opts.interp == Interp::Bilinear) {
    for (const KernelVariant v : variants) {
      TunedSpec t;
      t.datapath = v;
      t.map = MapChoice::parse("compact:8");
      cands.push_back({t, t.token()});
    }
  }
  const auto best = autotune_select(
      ctx, autotune_cache_key(ctx, cached_name()), cands,
      [this](const ExecContext& c, const TunedSpec& t) {
        return plan_with(c, t);
      },
      [this](const ExecutionPlan& p, const ExecContext& c) { execute(p, c); });
  if (best) resolve_tuned(*best);
}

void SimdBackend::execute(const ExecutionPlan& plan, const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ResolvedKernel& kernel = plan.kernel();
  Workspace& ws = plan.workspace();
  PlanInstrumentation& inst = plan.instrumentation();
  const std::size_t n = plan.tiles().size();
  inst.begin_frame(n);
  if (pool_ == nullptr) {
    const rt::Stopwatch sw;
    kernel(ctx.src, ctx.dst, plan.tiles()[0], ws.soa.data());
    inst.tile_seconds[0] = sw.elapsed_seconds();
    record_bytes(plan);
    return;
  }
  // Self-scheduled dynamic loop: each lane owns one workspace scratch and
  // pulls tiles off a shared cursor (the allocation-free equivalent of
  // parallel_for_each with Schedule::Dynamic, chunk 1).
  std::atomic<std::size_t> cursor{0};
  par::detail::ErrorSlot errors;
  pool_->run_indexed(ws.soa.size(), [&](std::size_t lane) {
    simd::SoaScratch* scratch = ws.soa.data() + lane;
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < n; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      try {
        const rt::Stopwatch sw;
        kernel(ctx.src, ctx.dst, plan.tiles()[i], scratch);
        inst.tile_seconds[i] = sw.elapsed_seconds();
      } catch (...) {
        errors.capture();
      }
    }
  });
  record_bytes(plan);
  errors.rethrow_if_set();
}

#ifdef _OPENMP
std::string OpenMpBackend::name() const {
  std::ostringstream os;
  os << "openmp";
  char sep = ':';
  if (threads_ > 0) {
    os << sep << "threads=" << threads_;
    sep = ',';
  }
  if (schedule_ != par::Schedule::Static)
    os << sep << "schedule=" << par::schedule_name(schedule_);
  return decorate_spec(os.str());
}

ExecutionPlan OpenMpBackend::plan(const ExecContext& ctx) {
  std::shared_ptr<const ConvertedMap> converted;
  const ExecContext ectx = resolve_map(ctx, converted);
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
  std::vector<par::Rect> tiles;
  switch (schedule_) {
    case par::Schedule::Static:
      // One contiguous row block per thread, mirroring schedule(static)
      // over rows; planned once instead of re-derived by the OpenMP
      // runtime.
      tiles = par::partition(ctx.dst.width, ctx.dst.height,
                             par::PartitionKind::RowBlocks, threads);
      break;
    case par::Schedule::Dynamic:
    case par::Schedule::Guided:
      // Finer row blocks so the OpenMP runtime has slack to balance with.
      tiles = par::partition(ctx.dst.width, ctx.dst.height,
                             par::PartitionKind::RowBlocks, threads * 4);
      break;
    case par::Schedule::Steal:
      // Square tiles in source-locality order, split into the team's
      // initial deque runs — same planning as PoolBackend's steal path.
      tiles = order_tiles_by_source_locality(
          ectx, par::partition(ctx.dst.width, ctx.dst.height,
                               par::PartitionKind::Tiles, 0, 64, 64));
      break;
  }
  ExecutionPlan p =
      make_plan(ctx, std::move(tiles), nullptr, std::move(converted));
  if (schedule_ == par::Schedule::Steal)
    init_steal_state(p.workspace(), static_cast<unsigned>(threads));
  return p;
}

void OpenMpBackend::execute(const ExecutionPlan& plan,
                            const ExecContext& ctx) {
  check_plan(plan, ctx);
  const ResolvedKernel& kernel = plan.kernel();
  PlanInstrumentation& inst = plan.instrumentation();
  inst.begin_frame(plan.tiles().size());
  const int threads = threads_ > 0 ? threads_ : omp_get_max_threads();
  const int n = static_cast<int>(plan.tiles().size());
  if (schedule_ == par::Schedule::Steal) {
    Workspace& ws = plan.workspace();
    const unsigned team = static_cast<unsigned>(threads);
    if (!steal_ || steal_->workers() != team)
      steal_ = std::make_unique<par::StealScheduler>(team);
    // Runs were planned for `team` workers; if the OpenMP max-thread count
    // moved under a threads-unspecified spec since planning, resplit into
    // the workspace's reusable slot.
    const std::vector<std::size_t>* runs = &ws.steal_runs;
    if (ws.steal_runs.size() != static_cast<std::size_t>(team) + 1) {
      par::balanced_runs_into(ws.resplit_runs, plan.tiles().size(), team,
                              [&](std::size_t i) {
                                return static_cast<double>(
                                    plan.tiles()[i].area());
                              });
      runs = &ws.resplit_runs;
    }
    steal_->begin_frame(ws.steal_order.data(), ws.steal_order.size(), *runs);
    par::detail::ErrorSlot errors;
#pragma omp parallel num_threads(threads)
    {
      steal_->work(static_cast<unsigned>(omp_get_thread_num()),
                   [&](std::size_t i) {
                     try {
                       const rt::Stopwatch sw;
                       kernel(ctx.src, ctx.dst, plan.tiles()[i]);
                       inst.tile_seconds[i] = sw.elapsed_seconds();
                     } catch (...) {
                       errors.capture();
                     }
                   });
    }
    const par::StealStats ss = steal_->stats();
    inst.local_tiles = ss.local;
    inst.stolen_tiles = ss.stolen;
    inst.steals = ss.steals;
    record_bytes(plan);
    errors.rethrow_if_set();
    return;
  }
  const auto run_tile = [&](int i) {
    const rt::Stopwatch sw;
    kernel(ctx.src, ctx.dst, plan.tiles()[static_cast<std::size_t>(i)]);
    inst.tile_seconds[static_cast<std::size_t>(i)] = sw.elapsed_seconds();
  };
  switch (schedule_) {
    case par::Schedule::Dynamic: {
#pragma omp parallel for schedule(dynamic) num_threads(threads)
      for (int i = 0; i < n; ++i) run_tile(i);
      break;
    }
    case par::Schedule::Guided: {
#pragma omp parallel for schedule(guided) num_threads(threads)
      for (int i = 0; i < n; ++i) run_tile(i);
      break;
    }
    default: {
#pragma omp parallel for schedule(static) num_threads(threads)
      for (int i = 0; i < n; ++i) run_tile(i);
      break;
    }
  }
  record_bytes(plan);
}
#endif

}  // namespace fisheye::core
