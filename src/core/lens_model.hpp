// Radial lens projection models.
//
// A fisheye lens is characterized by how the angle theta between an incoming
// ray and the optical axis maps to a radial distance r on the sensor. All
// models here are radially symmetric; r is in pixels when `focal` is the
// focal length in pixels.
//
//   equidistant     r = f * theta        (the study's lens; linear in angle)
//   equisolid       r = 2f * sin(theta/2)
//   orthographic    r = f * sin(theta)   (theta <= pi/2)
//   stereographic   r = 2f * tan(theta/2)
//   rectilinear     r = f * tan(theta)   (the distortion-free pinhole)
//   kannala_brandt  r = f * (theta + k1 theta^3 + k2 theta^5 + k3 theta^7 +
//                            k4 theta^9) — OpenCV's fisheye model; inverted
//                   by guarded Newton with a bisection fallback
//   division        r = f * d(tan theta), d(u) = (1 - sqrt(1 - 4 l u^2)) /
//                   (2 l u) — Fitzgibbon's one-parameter division model in
//                   normalized coordinates (exact closed-form inverse)
//
// Every analytic model provides the exact forward map and its exact inverse;
// the Kannala-Brandt polynomial is inverted numerically to full double
// precision. The polynomial Brown-Conrady baseline lives in
// brown_conrady.hpp and is fitted against these.
#pragma once

#include <array>
#include <memory>
#include <string>

namespace fisheye::core {

enum class LensKind {
  Equidistant,
  Equisolid,
  Orthographic,
  Stereographic,
  Rectilinear,
  KannalaBrandt,
  Division,
};

[[nodiscard]] const char* lens_kind_name(LensKind kind) noexcept;

/// Immutable radial projection model. Thread-safe: all methods are const and
/// stateless, so one instance is shared by every worker.
class LensModel {
 public:
  virtual ~LensModel() = default;

  /// Radial distance (pixels) for a ray at angle `theta` (radians) off-axis.
  /// Domain: [0, max_theta()].
  [[nodiscard]] virtual double radius_from_theta(double theta) const = 0;

  /// Exact inverse of radius_from_theta. Domain: [0, max_radius()].
  [[nodiscard]] virtual double theta_from_radius(double r) const = 0;

  /// d(radius)/d(theta) at `theta`; used to match centre resolution when
  /// choosing the output focal length.
  [[nodiscard]] virtual double dradius_dtheta(double theta) const = 0;

  /// Largest representable off-axis angle.
  [[nodiscard]] virtual double max_theta() const = 0;

  [[nodiscard]] virtual LensKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const;

  /// Focal length in pixels.
  [[nodiscard]] double focal() const noexcept { return focal_; }

  /// Radius of the image circle for a given field of view (full angle, rad).
  [[nodiscard]] double image_circle_radius(double fov) const;

 protected:
  explicit LensModel(double focal_px);

 private:
  double focal_;
};

/// Kannala-Brandt theta-polynomial lens (OpenCV cv::fisheye):
///   r = f * (theta + k1 theta^3 + k2 theta^5 + k3 theta^7 + k4 theta^9).
/// The usable domain is capped where the polynomial stops being strictly
/// increasing (first zero of its derivative, found at construction), so the
/// forward map is invertible everywhere theta_from_radius can be asked.
class KannalaBrandt final : public LensModel {
 public:
  /// Coefficients are dimensionless; |ki| <= 5 keeps the derivative scan
  /// meaningful (real calibrations are orders of magnitude smaller).
  KannalaBrandt(double focal_px, const std::array<double, 4>& k);

  /// The forward polynomial theta_d(theta) at focal = 1 — the single source
  /// of truth shared with cv_compat::kannala_brandt_theta.
  [[nodiscard]] static double distort_theta(
      double theta, const std::array<double, 4>& k) noexcept;

  [[nodiscard]] double radius_from_theta(double theta) const override;
  /// Guarded Newton iteration (bisection fallback when a step leaves the
  /// bracket or the derivative degenerates), run to double precision.
  [[nodiscard]] double theta_from_radius(double r) const override;
  [[nodiscard]] double dradius_dtheta(double theta) const override;
  [[nodiscard]] double max_theta() const override { return max_theta_; }
  [[nodiscard]] LensKind kind() const override {
    return LensKind::KannalaBrandt;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const std::array<double, 4>& coefficients() const noexcept {
    return k_;
  }

 private:
  std::array<double, 4> k_;
  double max_theta_;
};

/// One-parameter division model in normalized image coordinates:
///   r = f * d(tan theta),  d(u) = (1 - sqrt(1 - 4 lambda u^2)) /
///   (2 lambda u)  (d(u) = u when lambda = 0).
/// lambda <= 0 is barrel distortion; the inverse is closed-form:
///   theta = atan(rd / (1 + lambda rd^2)),  rd = r / f.
class DivisionModel final : public LensModel {
 public:
  /// `lambda` in [-10, 0]; the model stays linear in focal so
  /// focal_for_fov's scale-from-unit-focal trick keeps working.
  DivisionModel(double focal_px, double lambda);

  [[nodiscard]] double radius_from_theta(double theta) const override;
  [[nodiscard]] double theta_from_radius(double r) const override;
  [[nodiscard]] double dradius_dtheta(double theta) const override;
  [[nodiscard]] double max_theta() const override;
  [[nodiscard]] LensKind kind() const override { return LensKind::Division; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double lambda() const noexcept { return lambda_; }

 private:
  double lambda_;
};

/// Construct a model of `kind` with focal length `focal_px` (> 0).
/// KannalaBrandt and Division get mild default parameters (k = {-0.02,
/// 0.002, 0, 0}, lambda = -0.25); use the classes above or a LensSpec
/// (core/model_spec.hpp) for calibrated coefficients.
std::unique_ptr<LensModel> make_lens(LensKind kind, double focal_px);

/// Focal length (pixels) such that a lens of `kind` images a full field of
/// view `fov_rad` onto an image circle of radius `circle_radius_px`.
double focal_for_fov(LensKind kind, double fov_rad, double circle_radius_px);

}  // namespace fisheye::core
