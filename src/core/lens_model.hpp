// Radial lens projection models.
//
// A fisheye lens is characterized by how the angle theta between an incoming
// ray and the optical axis maps to a radial distance r on the sensor. All
// models here are radially symmetric; r is in pixels when `focal` is the
// focal length in pixels.
//
//   equidistant   r = f * theta          (the study's lens; linear in angle)
//   equisolid     r = 2f * sin(theta/2)
//   orthographic  r = f * sin(theta)     (theta <= pi/2)
//   stereographic r = 2f * tan(theta/2)
//   rectilinear   r = f * tan(theta)     (the distortion-free pinhole)
//
// Every model provides the exact forward map and its exact inverse; the
// polynomial Brown-Conrady baseline lives in brown_conrady.hpp and is fitted
// against these.
#pragma once

#include <memory>
#include <string>

namespace fisheye::core {

enum class LensKind {
  Equidistant,
  Equisolid,
  Orthographic,
  Stereographic,
  Rectilinear,
};

[[nodiscard]] const char* lens_kind_name(LensKind kind) noexcept;

/// Immutable radial projection model. Thread-safe: all methods are const and
/// stateless, so one instance is shared by every worker.
class LensModel {
 public:
  virtual ~LensModel() = default;

  /// Radial distance (pixels) for a ray at angle `theta` (radians) off-axis.
  /// Domain: [0, max_theta()].
  [[nodiscard]] virtual double radius_from_theta(double theta) const = 0;

  /// Exact inverse of radius_from_theta. Domain: [0, max_radius()].
  [[nodiscard]] virtual double theta_from_radius(double r) const = 0;

  /// d(radius)/d(theta) at `theta`; used to match centre resolution when
  /// choosing the output focal length.
  [[nodiscard]] virtual double dradius_dtheta(double theta) const = 0;

  /// Largest representable off-axis angle.
  [[nodiscard]] virtual double max_theta() const = 0;

  [[nodiscard]] virtual LensKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const;

  /// Focal length in pixels.
  [[nodiscard]] double focal() const noexcept { return focal_; }

  /// Radius of the image circle for a given field of view (full angle, rad).
  [[nodiscard]] double image_circle_radius(double fov) const;

 protected:
  explicit LensModel(double focal_px);

 private:
  double focal_;
};

/// Construct a model of `kind` with focal length `focal_px` (> 0).
std::unique_ptr<LensModel> make_lens(LensKind kind, double focal_px);

/// Focal length (pixels) such that a lens of `kind` images a full field of
/// view `fov_rad` onto an image circle of radius `circle_radius_px`.
double focal_for_fov(LensKind kind, double fov_rad, double circle_radius_px);

}  // namespace fisheye::core
