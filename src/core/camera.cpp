#include "core/camera.hpp"

#include <cmath>

#include "core/mapping.hpp"
#include "core/model_spec.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace fisheye::core {

FisheyeCamera::FisheyeCamera(std::shared_ptr<const LensModel> lens, double cx,
                             double cy)
    : lens_(std::move(lens)),
      cx_(cx),
      cy_(cy),
      generation_(detail::next_map_generation()) {
  FE_EXPECTS(lens_ != nullptr);
}

FisheyeCamera FisheyeCamera::centered(LensKind kind, double fov_rad, int width,
                                      int height) {
  FE_EXPECTS(width > 0 && height > 0);
  // The image circle is inscribed in the smaller frame dimension — the usual
  // "circular fisheye" fit used by surveillance sensors.
  const double circle_radius = 0.5 * std::min(width, height);
  const double focal = focal_for_fov(kind, fov_rad, circle_radius);
  auto lens = std::shared_ptr<const LensModel>(make_lens(kind, focal));
  return {std::move(lens), 0.5 * (width - 1), 0.5 * (height - 1)};
}

FisheyeCamera FisheyeCamera::centered(const LensSpec& spec, int width,
                                      int height) {
  FE_EXPECTS(width > 0 && height > 0);
  const double circle_radius = 0.5 * std::min(width, height);
  const double focal = spec.focal_for_circle(circle_radius);
  auto lens = std::shared_ptr<const LensModel>(spec.make(focal));
  return {std::move(lens), 0.5 * (width - 1), 0.5 * (height - 1)};
}

util::Vec2 FisheyeCamera::project(util::Vec3 ray) const {
  const double rxy = std::hypot(ray.x, ray.y);
  double theta = std::atan2(rxy, ray.z);
  const double tmax = lens_->max_theta();
  double r;
  if (theta <= tmax) {
    r = lens_->radius_from_theta(theta);
  } else {
    // Saturate smoothly beyond the lens' field: keep the mapping monotone so
    // bounds tests on the projected point remain meaningful.
    r = lens_->radius_from_theta(tmax) + lens_->focal() * (theta - tmax);
  }
  if (rxy == 0.0) return {cx_, cy_};
  const double inv = r / rxy;
  return {cx_ + ray.x * inv, cy_ + ray.y * inv};
}

util::Vec3 FisheyeCamera::unproject(util::Vec2 pixel) const {
  const double dx = pixel.x - cx_;
  const double dy = pixel.y - cy_;
  const double r = std::hypot(dx, dy);
  if (r == 0.0) return {0.0, 0.0, 1.0};
  const double theta = lens_->theta_from_radius(r);
  const double s = std::sin(theta) / r;
  return {dx * s, dy * s, std::cos(theta)};
}

}  // namespace fisheye::core
