// Minimal leveled logging to stderr. The library itself logs nothing at
// Info by default; benches and the accelerator simulators use Debug traces
// that can be enabled per-run (FISHEYE_LOG=debug).
#pragma once

#include <sstream>
#include <string>

namespace fisheye::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Current threshold; initialized from the FISHEYE_LOG environment variable
/// (debug|info|warn|error|off), defaulting to Warn.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace fisheye::util

#define FE_LOG(level, expr_stream)                                       \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::fisheye::util::log_level())) {                \
      std::ostringstream fe_log_os_;                                     \
      fe_log_os_ << expr_stream;                                         \
      ::fisheye::util::detail::log_emit(level, fe_log_os_.str());        \
    }                                                                    \
  } while (false)

#define FE_DEBUG(s) FE_LOG(::fisheye::util::LogLevel::Debug, s)
#define FE_INFO(s) FE_LOG(::fisheye::util::LogLevel::Info, s)
#define FE_WARN(s) FE_LOG(::fisheye::util::LogLevel::Warn, s)
#define FE_ERROR(s) FE_LOG(::fisheye::util::LogLevel::Error, s)
