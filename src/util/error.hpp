// Error-handling primitives shared by every fisheye module.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions for
// errors that cannot be handled locally and use FE_EXPECTS/FE_ENSURES for
// contract violations that indicate programmer error.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace fisheye {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument is outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (missing file, malformed header, short read...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated hardware resource is exhausted (e.g. a tile does
/// not fit into an accelerator local store even after splitting).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   std::source_location loc);
}  // namespace detail

}  // namespace fisheye

/// Precondition check. Always on: correction kernels index raw buffers and a
/// silently violated precondition is far more expensive than the branch.
#define FE_EXPECTS(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::fisheye::detail::contract_failure("precondition", #expr,         \
                                          std::source_location::current()); \
  } while (false)

/// Postcondition check.
#define FE_ENSURES(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::fisheye::detail::contract_failure("postcondition", #expr,        \
                                          std::source_location::current()); \
  } while (false)
