#include "util/error.hpp"

#include <sstream>

namespace fisheye::detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   std::source_location loc) {
  std::ostringstream os;
  os << kind << " violated: `" << expr << "` at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  throw InvalidArgument(os.str());
}

}  // namespace fisheye::detail
