// Q-format fixed-point arithmetic.
//
// The packed warp-map LUT stores source coordinates as Q18.14 (the format a
// 2010-era FPGA/Cell implementation would pick: 18 integer bits cover any
// realistic frame dimension, 14 fractional bits keep bilinear weights well
// below the 8-bit quantization floor). The F9 ablation sweeps the fractional
// width, so the format is a template parameter rather than a constant.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/error.hpp"

namespace fisheye::util {

/// Fixed-point value with `Frac` fractional bits stored in `Rep`.
/// Arithmetic is the minimal set the remap kernels need; everything is
/// constexpr so LUT packing can be tested exhaustively at compile time.
template <class Rep, int Frac>
class Fixed {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>);
  static_assert(Frac >= 0 && Frac < static_cast<int>(sizeof(Rep) * 8 - 1));

 public:
  using rep_type = Rep;
  static constexpr int frac_bits = Frac;
  static constexpr Rep one = Rep{1} << Frac;

  constexpr Fixed() noexcept = default;

  /// Bit-exact construction from a raw representation.
  static constexpr Fixed from_raw(Rep raw) noexcept {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Round-to-nearest conversion from floating point.
  static Fixed from_double(double v) noexcept {
    return from_raw(static_cast<Rep>(std::lround(v * static_cast<double>(one))));
  }
  static constexpr Fixed from_int(Rep v) noexcept {
    return from_raw(static_cast<Rep>(v << Frac));
  }

  [[nodiscard]] constexpr Rep raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(one);
  }
  /// Integer part (floor).
  [[nodiscard]] constexpr Rep floor() const noexcept {
    return raw_ >> Frac;  // arithmetic shift: floor for negatives too
  }
  /// Fractional part in [0, 1) as raw Q0.Frac bits.
  [[nodiscard]] constexpr Rep frac_raw() const noexcept {
    return raw_ & (one - 1);
  }
  /// Fractional part in [0, 1).
  [[nodiscard]] constexpr double frac() const noexcept {
    return static_cast<double>(frac_raw()) / static_cast<double>(one);
  }

  constexpr Fixed operator+(Fixed o) const noexcept {
    return from_raw(static_cast<Rep>(raw_ + o.raw_));
  }
  constexpr Fixed operator-(Fixed o) const noexcept {
    return from_raw(static_cast<Rep>(raw_ - o.raw_));
  }
  constexpr Fixed operator-() const noexcept {
    return from_raw(static_cast<Rep>(-raw_));
  }
  /// Full-width multiply then rescale; rounds toward nearest.
  constexpr Fixed operator*(Fixed o) const noexcept {
    using Wide = std::conditional_t<sizeof(Rep) <= 4, std::int64_t, __int128>;
    const Wide p = static_cast<Wide>(raw_) * static_cast<Wide>(o.raw_);
    const Wide rounded = p + (Wide{1} << (Frac - 1));
    return from_raw(static_cast<Rep>(rounded >> Frac));
  }

  constexpr auto operator<=>(const Fixed&) const noexcept = default;

 private:
  Rep raw_ = 0;
};

/// The library's canonical LUT coordinate format.
using Q18_14 = Fixed<std::int32_t, 14>;

/// Quantize `v` to `frac_bits` fractional bits (round to nearest), returning
/// the quantized double. Used by the precision-ablation bench to emulate an
/// arbitrary-width datapath without instantiating every template width.
[[nodiscard]] inline double quantize(double v, int frac_bits) noexcept {
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  return std::nearbyint(v * scale) / scale;
}

}  // namespace fisheye::util
