#include "util/rng.hpp"

#include <cmath>

#include "util/mathx.hpp"

namespace fisheye::util {

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * kPi * u2);
}

}  // namespace fisheye::util
