#include "util/matrix.hpp"

#include <cmath>

namespace fisheye::util {

double Vec2::norm() const noexcept { return std::hypot(x, y); }

double Vec3::norm() const noexcept { return std::sqrt(dot(*this)); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  FE_EXPECTS(n > 0.0);
  return {x / n, y / n, z / n};
}

Mat3 Mat3::rot_x(double a) noexcept {
  const double c = std::cos(a), s = std::sin(a);
  return {1, 0, 0, 0, c, -s, 0, s, c};
}

Mat3 Mat3::rot_y(double a) noexcept {
  const double c = std::cos(a), s = std::sin(a);
  return {c, 0, s, 0, 1, 0, -s, 0, c};
}

Mat3 Mat3::rot_z(double a) noexcept {
  const double c = std::cos(a), s = std::sin(a);
  return {c, -s, 0, s, c, 0, 0, 0, 1};
}

Mat3 Mat3::operator*(const Mat3& o) const noexcept {
  Mat3 r{0, 0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) s += (*this)(i, k) * o(k, j);
      r(i, j) = s;
    }
  return r;
}

double Mat3::det() const noexcept {
  const Mat3& m = *this;
  return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
         m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
         m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
}

MatX MatX::gram() const {
  MatX g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r)
        s += (*this)(r, i) * (*this)(r, j);
      g(i, j) = s;
      g(j, i) = s;
    }
  return g;
}

std::vector<double> MatX::mul_transposed(const std::vector<double>& b) const {
  FE_EXPECTS(b.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c) * b[r];
  return out;
}

std::vector<double> solve_spd(MatX a, std::vector<double> b) {
  const std::size_t n = a.rows();
  FE_EXPECTS(a.cols() == n && b.size() == n);

  // In-place Cholesky: A = L L^T, lower triangle of `a` becomes L.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) throw InvalidArgument("solve_spd: matrix is not SPD");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back substitution: L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * b[k];
    b[ii] = s / a(ii, ii);
  }
  return b;
}

std::vector<double> solve_least_squares(const MatX& a,
                                        const std::vector<double>& b,
                                        double lambda) {
  MatX normal = a.gram();
  for (std::size_t i = 0; i < normal.rows(); ++i)
    normal(i, i) += lambda + 1e-12;  // tiny Tikhonov floor for stability
  return solve_spd(std::move(normal), a.mul_transposed(b));
}

}  // namespace fisheye::util
