// Small fixed-size vectors/matrices plus the tiny dense solver the
// calibration module needs (normal equations + Cholesky). Self-contained on
// purpose: the library has no external linear-algebra dependency.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace fisheye::util {

/// 2-vector (image-plane points, map entries).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  [[nodiscard]] double norm() const noexcept;
  constexpr bool operator==(const Vec2&) const noexcept = default;
};

/// 3-vector (camera rays).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr double dot(Vec3 o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(Vec3 o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const noexcept;
  [[nodiscard]] Vec3 normalized() const;
  constexpr bool operator==(const Vec3&) const noexcept = default;
};

/// Row-major 3x3 matrix; enough rotation machinery for virtual PTZ views.
class Mat3 {
 public:
  constexpr Mat3() noexcept : m_{{1, 0, 0, 0, 1, 0, 0, 0, 1}} {}
  constexpr Mat3(double a, double b, double c, double d, double e, double f,
                 double g, double h, double i) noexcept
      : m_{{a, b, c, d, e, f, g, h, i}} {}

  static constexpr Mat3 identity() noexcept { return Mat3{}; }
  /// Rotation about +X (tilt), angle in radians.
  static Mat3 rot_x(double a) noexcept;
  /// Rotation about +Y (pan).
  static Mat3 rot_y(double a) noexcept;
  /// Rotation about +Z (roll).
  static Mat3 rot_z(double a) noexcept;

  constexpr double operator()(std::size_t r, std::size_t c) const noexcept {
    return m_[r * 3 + c];
  }
  constexpr double& operator()(std::size_t r, std::size_t c) noexcept {
    return m_[r * 3 + c];
  }

  [[nodiscard]] Mat3 operator*(const Mat3& o) const noexcept;
  [[nodiscard]] constexpr Vec3 operator*(Vec3 v) const noexcept {
    return {m_[0] * v.x + m_[1] * v.y + m_[2] * v.z,
            m_[3] * v.x + m_[4] * v.y + m_[5] * v.z,
            m_[6] * v.x + m_[7] * v.y + m_[8] * v.z};
  }
  [[nodiscard]] constexpr Mat3 transposed() const noexcept {
    return {m_[0], m_[3], m_[6], m_[1], m_[4], m_[7], m_[2], m_[5], m_[8]};
  }
  [[nodiscard]] double det() const noexcept;

 private:
  std::array<double, 9> m_;
};

/// Dense row-major matrix of run-time size; only what Gauss-Newton needs.
class MatX {
 public:
  MatX() = default;
  MatX(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }

  /// A^T * A (the Gauss-Newton normal matrix).
  [[nodiscard]] MatX gram() const;
  /// A^T * b.
  [[nodiscard]] std::vector<double> mul_transposed(
      const std::vector<double>& b) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve the symmetric positive-definite system `A x = b` in place via
/// Cholesky. Throws InvalidArgument if A is not SPD (pivot <= 0).
std::vector<double> solve_spd(MatX a, std::vector<double> b);

/// Solve a least-squares problem `min |A x - b|` via normal equations with
/// optional Levenberg damping `lambda` added to the diagonal.
std::vector<double> solve_least_squares(const MatX& a,
                                        const std::vector<double>& b,
                                        double lambda = 0.0);

}  // namespace fisheye::util
