#include "util/cpu.hpp"

#include <cstdlib>
#include <sstream>
#include <thread>

namespace fisheye::util {

namespace {

CpuInfo detect() noexcept {
  CpuInfo info;
  info.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  info.sse2 = __builtin_cpu_supports("sse2") != 0;
  info.avx2 = __builtin_cpu_supports("avx2") != 0;
  info.avx512f = __builtin_cpu_supports("avx512f") != 0;
  info.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return info;
}

}  // namespace

const CpuInfo& cpu_info() noexcept {
  static const CpuInfo info = detect();
  return info;
}

std::string CpuInfo::summary() const {
  std::ostringstream os;
  os << hardware_threads << " hw thread" << (hardware_threads == 1 ? "" : "s");
  os << ", isa: " << isa();
  return os.str();
}

std::string CpuInfo::isa() const {
  std::string out;
  auto add = [&](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += '+';
    out += name;
  };
  add(sse2, "sse2");
  add(avx2, "avx2");
  add(avx512f, "avx512f");
  add(fma, "fma");
  if (out.empty()) out = "scalar";
  return out;
}

bool force_scalar() noexcept {
  const char* v = std::getenv("FISHEYE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace fisheye::util
