#include "util/cpu.hpp"

#include <sstream>
#include <thread>

namespace fisheye::util {

namespace {

CpuInfo detect() noexcept {
  CpuInfo info;
  info.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  info.sse2 = __builtin_cpu_supports("sse2") != 0;
  info.avx2 = __builtin_cpu_supports("avx2") != 0;
  info.avx512f = __builtin_cpu_supports("avx512f") != 0;
  info.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return info;
}

}  // namespace

const CpuInfo& cpu_info() noexcept {
  static const CpuInfo info = detect();
  return info;
}

std::string CpuInfo::summary() const {
  std::ostringstream os;
  os << hardware_threads << " hw thread" << (hardware_threads == 1 ? "" : "s");
  os << ", isa:";
  bool any = false;
  auto add = [&](bool have, const char* name) {
    if (have) {
      os << (any ? "+" : " ") << name;
      any = true;
    }
  };
  add(sse2, "sse2");
  add(avx2, "avx2");
  add(avx512f, "avx512f");
  add(fma, "fma");
  if (!any) os << " scalar";
  return os.str();
}

}  // namespace fisheye::util
