#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fisheye::util {

namespace {

LogLevel parse_env() noexcept {
  const char* env = std::getenv("FISHEYE_LOG");
  if (env == nullptr) return LogLevel::Warn;
  const std::string v(env);
  if (v == "debug") return LogLevel::Debug;
  if (v == "info") return LogLevel::Info;
  if (v == "warn") return LogLevel::Warn;
  if (v == "error") return LogLevel::Error;
  if (v == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(parse_env())};
  return level;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  const std::scoped_lock lock(mu);
  std::cerr << "[fisheye " << level_name(level) << "] " << msg << '\n';
}

}  // namespace detail

}  // namespace fisheye::util
