// Scalar math helpers used throughout the correction kernels.
//
// The on-the-fly remap path spends almost all of its time in atan/tan, so we
// provide polynomial approximations with documented error bounds alongside
// the exact libm versions; the F3 bench quantifies the trade-off.
#pragma once

#include <cmath>
#include <numbers>

namespace fisheye::util {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kHalfPi = kPi / 2.0;

constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

template <class T>
constexpr T clamp(T v, T lo, T hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

constexpr double sq(double v) noexcept { return v * v; }

/// Fast atan approximation for x in [-1, 1].
///
/// Minimax-style polynomial (odd, degree 9); max abs error < 1.5e-5 rad,
/// i.e. well under a hundredth of a pixel at any realistic focal length.
/// Matches the precision/me-throughput trade a fixed-function datapath makes.
[[nodiscard]] constexpr double fast_atan_unit(double x) noexcept {
  // Coefficients fitted over [-1, 1] (Remez-like, from the classic
  // Abramowitz-Stegun family refined to degree 9).
  const double x2 = x * x;
  return x * (0.99997726 +
              x2 * (-0.33262347 +
                    x2 * (0.19354346 +
                          x2 * (-0.11643287 +
                                x2 * (0.05265332 + x2 * -0.01172120)))));
}

/// Fast full-range atan: range-reduces |x| > 1 via atan(x) = pi/2 - atan(1/x).
[[nodiscard]] constexpr double fast_atan(double x) noexcept {
  const bool swap = x > 1.0 || x < -1.0;
  const double xr = swap ? 1.0 / x : x;
  double a = fast_atan_unit(xr);
  if (swap) a = (x > 0.0 ? kHalfPi : -kHalfPi) - a;
  return a;
}

/// Fast atan2 built on fast_atan; same error bound, full quadrant handling.
[[nodiscard]] constexpr double fast_atan2(double y, double x) noexcept {
  if (x == 0.0 && y == 0.0) return 0.0;
  if (x == 0.0) return y > 0.0 ? kHalfPi : -kHalfPi;
  const double a = fast_atan(y / x);
  if (x > 0.0) return a;
  return y >= 0.0 ? a + kPi : a - kPi;
}

/// Fast sine for x in [-pi, pi]; reduces to [-pi/2, pi/2] by symmetry, then
/// a degree-7 odd polynomial. Max abs error ~2e-5 over the full domain.
[[nodiscard]] constexpr double fast_sin(double x) noexcept {
  if (x > kHalfPi) x = kPi - x;
  if (x < -kHalfPi) x = -kPi - x;
  const double x2 = x * x;
  return x * (0.9999966 +
              x2 * (-0.16664824 + x2 * (0.00830629 + x2 * -0.00018363)));
}

/// Linear interpolation.
constexpr double lerp(double a, double b, double t) noexcept {
  return a + t * (b - a);
}

/// True when |a - b| <= atol + rtol * |b|.
[[nodiscard]] constexpr bool almost_equal(double a, double b,
                                          double atol = 1e-12,
                                          double rtol = 1e-9) noexcept {
  const double diff = a > b ? a - b : b - a;
  const double mag = b > 0 ? b : -b;
  return diff <= atol + rtol * mag;
}

}  // namespace fisheye::util
