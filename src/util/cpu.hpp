// Runtime CPU capability report used by the bench harness headers so that
// every printed table records the hardware it ran on.
#pragma once

#include <string>

namespace fisheye::util {

struct CpuInfo {
  unsigned hardware_threads = 1;
  bool sse2 = false;
  bool avx2 = false;
  bool avx512f = false;
  bool fma = false;

  /// One-line human-readable summary, e.g. "8 threads, avx2+fma".
  [[nodiscard]] std::string summary() const;

  /// Compact ISA token, e.g. "sse2+avx2+fma", or "scalar" when the CPU
  /// reports none of the probed extensions. Stamped into plan debug
  /// strings, bench JSON rows and autotune cache keys so every recorded
  /// number names the hardware datapath that produced it.
  [[nodiscard]] std::string isa() const;
};

/// Query the executing CPU (cached after the first call).
const CpuInfo& cpu_info() noexcept;

/// True when the FISHEYE_FORCE_SCALAR environment variable is set to a
/// non-empty value other than "0": a kill switch that makes kernel
/// resolution degrade every SIMD variant to the scalar datapath (and the
/// fallback path CI exercises without non-AVX2 hardware). Read fresh on
/// every call so tests can flip it around individual plans.
[[nodiscard]] bool force_scalar() noexcept;

}  // namespace fisheye::util
