// Runtime CPU capability report used by the bench harness headers so that
// every printed table records the hardware it ran on.
#pragma once

#include <string>

namespace fisheye::util {

struct CpuInfo {
  unsigned hardware_threads = 1;
  bool sse2 = false;
  bool avx2 = false;
  bool avx512f = false;
  bool fma = false;

  /// One-line human-readable summary, e.g. "8 threads, avx2+fma".
  [[nodiscard]] std::string summary() const;
};

/// Query the executing CPU (cached after the first call).
const CpuInfo& cpu_info() noexcept;

}  // namespace fisheye::util
