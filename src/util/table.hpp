// Plain-text/markdown/CSV table formatting for the bench harness.
//
// Every reproduced table/figure is printed through this one writer so the
// bench outputs share a uniform, machine-greppable format.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace fisheye::util {

/// Column-aligned table builder. Cells are strings; numeric convenience
/// overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();
  /// Attach a non-printed annotation to the current row — the resolved
  /// backend spec string on bench tables, mirrored into the --json output
  /// as a "spec" key (see bench_common). Must follow row().
  Table& annotate(std::string note);
  /// Keyed annotation: mirrored into the --json output as its own key
  /// (e.g. the lens model token on the model-zoo bench). annotate(note) is
  /// shorthand for annotate("spec", note). Re-annotating a key on the same
  /// row overwrites it. Must follow row().
  Table& annotate(std::string key, std::string note);
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(double v, int precision = 2);
  Table& add(long long v);
  Table& add(unsigned long long v);
  Table& add(int v) { return add(static_cast<long long>(v)); }
  Table& add(unsigned v) { return add(static_cast<unsigned long long>(v)); }
  Table& add(std::size_t v) {
    return add(static_cast<unsigned long long>(v));
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }
  /// The row's "spec" annotation; empty when none was attached.
  [[nodiscard]] const std::string& annotation(std::size_t row) const noexcept;
  /// All keyed annotations of a row, in attachment order.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  annotations(std::size_t row) const noexcept;

  /// Render as a GitHub-style markdown table.
  [[nodiscard]] std::string to_markdown() const;
  /// Render as RFC-4180-ish CSV (no quoting of commas needed for our cells,
  /// but quotes are applied defensively when a cell contains ',' or '"').
  [[nodiscard]] std::string to_csv() const;

  /// Print markdown to `os` with a title line.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  /// One entry per row: (key, note) pairs in attachment order.
  std::vector<std::vector<std::pair<std::string, std::string>>> notes_;
};

/// Format a double with `precision` digits after the point.
std::string format_double(double v, int precision);

/// Observer invoked by Table::print() after rendering, with the table and
/// its title. Lets a harness mirror every printed table to a second sink
/// (the bench --json writer) without touching call sites. One listener
/// process-wide; null (the default) disables.
using TablePrintListener = void (*)(const Table& table,
                                    const std::string& title);
void set_table_print_listener(TablePrintListener listener) noexcept;

}  // namespace fisheye::util
