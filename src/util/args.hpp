// Minimal command-line flag parser for the example tools.
//
// Supports `--name value`, `--name=value`, boolean `--flag`, and collects
// positional arguments. No external dependency, deterministic errors.
// Grammar note: `--name value` binds greedily (there is no schema), so a
// boolean flag directly followed by a positional would swallow it — place
// positionals before boolean flags, or use `--flag=1`.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fisheye::util {

class Args {
 public:
  Args(int argc, const char* const* argv) {
    FE_EXPECTS(argc >= 1);
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token.erase(0, 2);
      const std::size_t eq = token.find('=');
      if (eq != std::string::npos) {
        named_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        named_[token] = argv[++i];
      } else {
        named_[token] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return named_.count(name) != 0;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = named_.find(name);
    return it == named_.end() ? fallback : it->second;
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const auto it = named_.find(name);
    if (it == named_.end()) return fallback;
    try {
      std::size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      throw InvalidArgument("--" + name + ": expected a number, got '" +
                            it->second + "'");
    }
  }

  [[nodiscard]] int get_int(const std::string& name, int fallback) const {
    const double v = get_double(name, fallback);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
      throw InvalidArgument("--" + name + ": expected an integer");
    return i;
  }

  [[nodiscard]] bool get_bool(const std::string& name) const {
    const auto it = named_.find(name);
    if (it == named_.end()) return false;
    return it->second.empty() || it->second == "1" || it->second == "true";
  }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace fisheye::util
