// Cache-line / SIMD-lane aligned storage.
//
// Remap kernels stream through large planes; aligning rows to 64 bytes keeps
// vector loads unsplit and avoids false sharing between the per-thread output
// strips produced by the parallel backends.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "util/error.hpp"

namespace fisheye::util {

inline constexpr std::size_t kCacheLine = 64;

/// Round `n` up to the next multiple of `alignment` (a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t alignment) noexcept {
  return (n + alignment - 1) & ~(alignment - 1);
}

constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// RAII owner of a 64-byte aligned, zero-initialized buffer of `T`.
/// Movable, non-copyable; the canonical backing store for image planes,
/// warp-map LUTs and simulated accelerator local stores.
template <class T>
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = align_up(count * sizeof(T), kCacheLine);
    void* p = std::aligned_alloc(kCacheLine, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_.reset(static_cast<T*>(p));
    std::uninitialized_value_construct_n(data_.get(), count);
  }

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_.get()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

  [[nodiscard]] T* begin() noexcept { return data_.get(); }
  [[nodiscard]] T* end() noexcept { return data_.get() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_.get(); }
  [[nodiscard]] const T* end() const noexcept { return data_.get() + size_; }

 private:
  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace fisheye::util
