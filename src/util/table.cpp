#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace fisheye::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FE_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  notes_.emplace_back();
  return *this;
}

Table& Table::annotate(std::string note) {
  return annotate("spec", std::move(note));
}

Table& Table::annotate(std::string key, std::string note) {
  FE_EXPECTS(!rows_.empty() && !key.empty());
  for (auto& kv : notes_.back()) {
    if (kv.first == key) {
      kv.second = std::move(note);
      return *this;
    }
  }
  notes_.back().emplace_back(std::move(key), std::move(note));
  return *this;
}

const std::string& Table::annotation(std::size_t row) const noexcept {
  static const std::string kNone;
  if (row >= notes_.size()) return kNone;
  for (const auto& kv : notes_[row])
    if (kv.first == "spec") return kv.second;
  return kNone;
}

const std::vector<std::pair<std::string, std::string>>& Table::annotations(
    std::size_t row) const noexcept {
  static const std::vector<std::pair<std::string, std::string>> kNone;
  return row < notes_.size() ? notes_[row] : kNone;
}

Table& Table::add(std::string cell) {
  FE_EXPECTS(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double v, int precision) {
  return add(format_double(v, precision));
}

Table& Table::add(long long v) { return add(std::to_string(v)); }

Table& Table::add(unsigned long long v) { return add(std::to_string(v)); }

std::string Table::to_markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

namespace {
TablePrintListener g_print_listener = nullptr;
}  // namespace

void set_table_print_listener(TablePrintListener listener) noexcept {
  g_print_listener = listener;
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n### " << title << "\n\n" << to_markdown() << '\n';
  if (g_print_listener != nullptr) g_print_listener(*this, title);
}

}  // namespace fisheye::util
