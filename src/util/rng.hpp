// Deterministic PRNG (xoshiro256++) for synthetic scenes and noise models.
//
// All randomness in the library flows through this type so that every test,
// example and bench is reproducible bit-for-bit across runs and platforms;
// std::mt19937 distributions are not portable across standard libraries.
#pragma once

#include <cstdint>

namespace fisheye::util {

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
      s = t ^ (t >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Standard normal via Box-Muller (one value per call; simple and exact
  /// enough for noise injection in calibration tests).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace fisheye::util
