// Multi-camera panorama stitching — the surround-view application.
//
// A rig of fisheye cameras (pure-rotation extrinsics: valid for scenery at
// distance, the panorama regime) is fused into one equirectangular output.
// Setup precomputes, per camera, the inverse warp map into that camera's
// frame plus a per-pixel blend weight (cosine feather on angular distance
// from the camera axis, zero where the camera cannot see the ray or the
// sample would fall outside its image). Per frame, stitching is one remap
// per camera plus a weighted accumulate — embarrassingly parallel over
// output rows.
#pragma once

#include <cstdint>
#include <vector>

#include "core/camera.hpp"
#include "core/mapping.hpp"
#include "image/image.hpp"
#include "parallel/thread_pool.hpp"
#include "util/matrix.hpp"

namespace fisheye::stitch {

/// One physical camera of the rig.
struct RigCamera {
  core::FisheyeCamera camera;
  util::Mat3 world_from_cam = util::Mat3::identity();
  int frame_width = 0;
  int frame_height = 0;
};

enum class BlendMode {
  Feather,        ///< normalized cosine-falloff weighted average
  NearestCamera,  ///< winner-takes-all by weight (hard seams, no ghosting)
};

[[nodiscard]] constexpr const char* blend_mode_name(BlendMode m) noexcept {
  switch (m) {
    case BlendMode::Feather: return "feather";
    case BlendMode::NearestCamera: return "nearest-camera";
  }
  return "?";
}

class PanoramaStitcher {
 public:
  /// Output: equirectangular, longitudes spanning `hfov` and latitudes
  /// `vfov` about the rig's forward axis.
  PanoramaStitcher(std::vector<RigCamera> rig, int out_width, int out_height,
                   double hfov, double vfov,
                   BlendMode blend = BlendMode::Feather);

  /// General form: fuse into ANY output projection (equirectangular,
  /// cylindrical, perspective, ground-plane top-down...). `view` is only
  /// read during construction.
  PanoramaStitcher(std::vector<RigCamera> rig,
                   const core::ViewProjection& view,
                   BlendMode blend = BlendMode::Feather);

  /// Fuse one frame per camera (order matches the rig vector; dimensions
  /// must match each RigCamera). `pool` may be null for serial execution.
  img::Image8 stitch(const std::vector<img::ConstImageView<std::uint8_t>>&
                         frames,
                     par::ThreadPool* pool = nullptr) const;

  /// Estimate one multiplicative gain per camera that reconciles exposure
  /// differences: cameras' mean intensities are compared over the output
  /// pixels where they overlap, and gains are solved in least squares with
  /// the mean gain anchored at 1 (the classic panorama gain compensation).
  /// Returns one factor per camera; feed it to stitch_with_gains.
  std::vector<double> estimate_gains(
      const std::vector<img::ConstImageView<std::uint8_t>>& frames) const;

  /// stitch() with per-camera gains applied to the samples before blending.
  img::Image8 stitch_with_gains(
      const std::vector<img::ConstImageView<std::uint8_t>>& frames,
      const std::vector<double>& gains,
      par::ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t cameras() const noexcept { return rig_.size(); }
  [[nodiscard]] int width() const noexcept { return out_width_; }
  [[nodiscard]] int height() const noexcept { return out_height_; }
  /// Per-camera warp map (output pixel -> that camera's image).
  [[nodiscard]] const core::WarpMap& map(std::size_t cam) const {
    return maps_[cam];
  }
  /// Per-camera blend weight per output pixel, 0..1.
  [[nodiscard]] const std::vector<float>& weights(std::size_t cam) const {
    return weights_[cam];
  }
  /// Number of output pixels no camera covers (diagnostic).
  [[nodiscard]] std::size_t uncovered_pixels() const noexcept {
    return uncovered_;
  }

 private:
  void stitch_rows(const std::vector<img::ConstImageView<std::uint8_t>>&
                       frames,
                   img::ImageView<std::uint8_t> out, int y0, int y1,
                   const std::vector<double>* gains) const;
  img::Image8 stitch_impl(
      const std::vector<img::ConstImageView<std::uint8_t>>& frames,
      const std::vector<double>* gains, par::ThreadPool* pool) const;

  std::vector<RigCamera> rig_;
  int out_width_;
  int out_height_;
  BlendMode blend_;
  std::vector<core::WarpMap> maps_;
  std::vector<std::vector<float>> weights_;
  std::size_t uncovered_ = 0;
};

}  // namespace fisheye::stitch
