#include "stitch/stitcher.hpp"

#include <cmath>

#include "core/interp.hpp"
#include "parallel/parallel_for.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/matrix.hpp"

namespace fisheye::stitch {

PanoramaStitcher::PanoramaStitcher(std::vector<RigCamera> rig, int out_width,
                                   int out_height, double hfov, double vfov,
                                   BlendMode blend)
    : PanoramaStitcher(
          std::move(rig),
          core::EquirectangularView(out_width, out_height, hfov, vfov),
          blend) {}

PanoramaStitcher::PanoramaStitcher(std::vector<RigCamera> rig,
                                   const core::ViewProjection& view,
                                   BlendMode blend)
    : rig_(std::move(rig)),
      out_width_(view.width()),
      out_height_(view.height()),
      blend_(blend) {
  FE_EXPECTS(!rig_.empty());
  FE_EXPECTS(out_width_ > 1 && out_height_ > 1);
  for (const RigCamera& rc : rig_)
    FE_EXPECTS(rc.frame_width > 0 && rc.frame_height > 0);

  const std::size_t px =
      static_cast<std::size_t>(out_width_) * out_height_;
  maps_.resize(rig_.size());
  weights_.resize(rig_.size());
  for (std::size_t c = 0; c < rig_.size(); ++c) {
    maps_[c].width = out_width_;
    maps_[c].height = out_height_;
    maps_[c].src_x.assign(px, -1.0e9f);
    maps_[c].src_y.assign(px, -1.0e9f);
    weights_[c].assign(px, 0.0f);
  }

  // Per camera: project every output ray; weight by angular distance from
  // the camera axis with a cosine feather that reaches zero at the lens
  // field edge.
  for (std::size_t c = 0; c < rig_.size(); ++c) {
    const RigCamera& rc = rig_[c];
    const util::Mat3 cam_from_world = rc.world_from_cam.transposed();
    const double theta_max =
        std::min(rc.camera.lens().max_theta(), util::kHalfPi);
    for (int y = 0; y < out_height_; ++y) {
      const std::size_t row = static_cast<std::size_t>(y) * out_width_;
      for (int x = 0; x < out_width_; ++x) {
        const util::Vec3 world = view.ray_for_pixel(
            {static_cast<double>(x), static_cast<double>(y)});
        const util::Vec3 cam_ray = cam_from_world * world;
        if (cam_ray.z <= 0.0 && std::hypot(cam_ray.x, cam_ray.y) == 0.0)
          continue;  // straight behind
        const double theta =
            std::atan2(std::hypot(cam_ray.x, cam_ray.y), cam_ray.z);
        if (theta >= theta_max) continue;
        const util::Vec2 src = rc.camera.project(cam_ray);
        // Require the full bilinear footprint inside the frame.
        if (src.x < 0.0 || src.y < 0.0 || src.x > rc.frame_width - 1.0 ||
            src.y > rc.frame_height - 1.0)
          continue;
        maps_[c].src_x[row + x] = static_cast<float>(src.x);
        maps_[c].src_y[row + x] = static_cast<float>(src.y);
        // Cosine feather: 1 on-axis, 0 at the field edge.
        weights_[c][row + x] = static_cast<float>(
            0.5 * (1.0 + std::cos(util::kPi * theta / theta_max)));
      }
    }
  }

  // Coverage diagnostic.
  for (std::size_t i = 0; i < px; ++i) {
    bool covered = false;
    for (std::size_t c = 0; c < rig_.size() && !covered; ++c)
      covered = weights_[c][i] > 0.0f;
    uncovered_ += covered ? 0 : 1;
  }
}

void PanoramaStitcher::stitch_rows(
    const std::vector<img::ConstImageView<std::uint8_t>>& frames,
    img::ImageView<std::uint8_t> out, int y0, int y1,
    const std::vector<double>* gains) const {
  auto gain_of = [&](std::size_t c) -> float {
    return gains == nullptr ? 1.0f : static_cast<float>((*gains)[c]);
  };
  const int ch = out.channels;
  float acc[4];
  std::uint8_t sample[4];
  for (int y = y0; y < y1; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * out_width_;
    std::uint8_t* out_row = out.row(y);
    for (int x = 0; x < out_width_; ++x) {
      const std::size_t i = row + x;
      float wsum = 0.0f;
      for (int k = 0; k < ch; ++k) acc[k] = 0.0f;

      if (blend_ == BlendMode::Feather) {
        for (std::size_t c = 0; c < rig_.size(); ++c) {
          const float w = weights_[c][i];
          if (w <= 0.0f) continue;
          core::sample_bilinear(frames[c], maps_[c].src_x[i],
                                maps_[c].src_y[i],
                                img::BorderMode::Replicate, 0, sample);
          const float g = gain_of(c);
          for (int k = 0; k < ch; ++k) acc[k] += w * g * sample[k];
          wsum += w;
        }
      } else {  // NearestCamera
        std::size_t best = rig_.size();
        float best_w = 0.0f;
        for (std::size_t c = 0; c < rig_.size(); ++c)
          if (weights_[c][i] > best_w) {
            best_w = weights_[c][i];
            best = c;
          }
        if (best < rig_.size()) {
          core::sample_bilinear(frames[best], maps_[best].src_x[i],
                                maps_[best].src_y[i],
                                img::BorderMode::Replicate, 0, sample);
          const float g = gain_of(best);
          for (int k = 0; k < ch; ++k) acc[k] = g * sample[k];
          wsum = 1.0f;
        }
      }

      std::uint8_t* dst = out_row + static_cast<std::size_t>(x) * ch;
      if (wsum > 0.0f) {
        for (int k = 0; k < ch; ++k) {
          const float v = acc[k] / wsum + 0.5f;
          dst[k] = static_cast<std::uint8_t>(
              v < 0.0f ? 0 : (v > 255.0f ? 255 : v));
        }
      } else {
        for (int k = 0; k < ch; ++k) dst[k] = 0;
      }
    }
  }
}

img::Image8 PanoramaStitcher::stitch_impl(
    const std::vector<img::ConstImageView<std::uint8_t>>& frames,
    const std::vector<double>* gains, par::ThreadPool* pool) const {
  FE_EXPECTS(frames.size() == rig_.size());
  const int ch = frames.front().channels;
  FE_EXPECTS(ch >= 1 && ch <= 4);
  for (std::size_t c = 0; c < rig_.size(); ++c) {
    FE_EXPECTS(frames[c].width == rig_[c].frame_width &&
               frames[c].height == rig_[c].frame_height);
    FE_EXPECTS(frames[c].channels == ch);
  }
  img::Image8 out(out_width_, out_height_, ch);
  if (pool == nullptr) {
    stitch_rows(frames, out.view(), 0, out_height_, gains);
  } else {
    par::parallel_for(
        *pool, static_cast<std::size_t>(out_height_),
        [&](std::size_t b, std::size_t e) {
          stitch_rows(frames, out.view(), static_cast<int>(b),
                      static_cast<int>(e), gains);
        },
        {par::Schedule::Dynamic, 16});
  }
  return out;
}

img::Image8 PanoramaStitcher::stitch(
    const std::vector<img::ConstImageView<std::uint8_t>>& frames,
    par::ThreadPool* pool) const {
  return stitch_impl(frames, nullptr, pool);
}

img::Image8 PanoramaStitcher::stitch_with_gains(
    const std::vector<img::ConstImageView<std::uint8_t>>& frames,
    const std::vector<double>& gains, par::ThreadPool* pool) const {
  FE_EXPECTS(gains.size() == rig_.size());
  for (double g : gains) FE_EXPECTS(g > 0.0);
  return stitch_impl(frames, &gains, pool);
}

std::vector<double> PanoramaStitcher::estimate_gains(
    const std::vector<img::ConstImageView<std::uint8_t>>& frames) const {
  FE_EXPECTS(frames.size() == rig_.size());
  const std::size_t n = rig_.size();
  // Mean intensity of camera c over pixels it shares with camera d.
  std::vector<double> sum(n * n, 0.0);
  std::vector<double> cnt(n * n, 0.0);
  const std::size_t px = static_cast<std::size_t>(out_width_) * out_height_;
  std::uint8_t sample[4];
  for (std::size_t i = 0; i < px; ++i) {
    for (std::size_t c = 0; c < n; ++c) {
      if (weights_[c][i] <= 0.0f) continue;
      for (std::size_t d = c + 1; d < n; ++d) {
        if (weights_[d][i] <= 0.0f) continue;
        // Luma-ish mean of each camera at this shared output pixel.
        double vc = 0.0, vd = 0.0;
        core::sample_bilinear(frames[c], maps_[c].src_x[i],
                              maps_[c].src_y[i], img::BorderMode::Replicate,
                              0, sample);
        for (int k = 0; k < frames[c].channels; ++k) vc += sample[k];
        core::sample_bilinear(frames[d], maps_[d].src_x[i],
                              maps_[d].src_y[i], img::BorderMode::Replicate,
                              0, sample);
        for (int k = 0; k < frames[d].channels; ++k) vd += sample[k];
        sum[c * n + d] += vc;
        sum[d * n + c] += vd;
        cnt[c * n + d] += 1.0;
        cnt[d * n + c] += 1.0;
      }
    }
  }
  // Least squares on log-gains: for each overlapping pair,
  // log g_c - log g_d = log(mean_d / mean_c); anchor sum(log g) = 0.
  util::MatX a(n * (n - 1) / 2 + 1, n);
  std::vector<double> b(n * (n - 1) / 2 + 1, 0.0);
  std::size_t row = 0;
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t d = c + 1; d < n; ++d) {
      if (cnt[c * n + d] > 0.0 && sum[c * n + d] > 0.0 &&
          sum[d * n + c] > 0.0) {
        a(row, c) = 1.0;
        a(row, d) = -1.0;
        b[row] = std::log(sum[d * n + c] / sum[c * n + d]);
      }
      ++row;
    }
  for (std::size_t c = 0; c < n; ++c) a(row, c) = 1.0;  // anchor
  const std::vector<double> logg = util::solve_least_squares(a, b);
  std::vector<double> gains(n);
  for (std::size_t c = 0; c < n; ++c) gains[c] = std::exp(logg[c]);
  return gains;
}

}  // namespace fisheye::stitch
