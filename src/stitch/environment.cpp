#include "stitch/environment.hpp"

#include <cmath>

#include "core/kernel.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace fisheye::stitch {

using util::kHalfPi;
using util::kPi;

util::Vec2 environment_coords(util::Vec3 world_ray, int env_width,
                              int env_height) {
  const double lon = std::atan2(world_ray.x, world_ray.z);   // [-pi, pi]
  const double rxz = std::hypot(world_ray.x, world_ray.z);
  const double lat = std::atan2(world_ray.y, rxz);           // +down
  double x = (lon + kPi) / (2.0 * kPi) * env_width;
  double y = (lat + kHalfPi) / kPi * (env_height - 1);
  if (x >= env_width) x -= env_width;
  return {x, y};
}

util::Vec3 environment_ray(double x, double y, int env_width,
                           int env_height) {
  const double lon = x / env_width * 2.0 * kPi - kPi;
  const double lat = y / (env_height - 1) * kPi - kHalfPi;
  const double cl = std::cos(lat);
  return {std::sin(lon) * cl, std::sin(lat), std::cos(lon) * cl};
}

img::Image8 render_from_environment(img::ConstImageView<std::uint8_t> env,
                                    const core::FisheyeCamera& camera,
                                    const util::Mat3& world_from_cam,
                                    int width, int height,
                                    core::Interp interp) {
  FE_EXPECTS(width > 0 && height > 0);
  img::Image8 out(width, height, env.channels);
  const core::SampleFn sample = core::sample_kernel(interp);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* row = out.row(y);
    for (int x = 0; x < width; ++x) {
      const util::Vec3 cam_ray = camera.unproject(
          {static_cast<double>(x), static_cast<double>(y)});
      const util::Vec3 world = world_from_cam * cam_ray;
      const util::Vec2 uv = environment_coords(world, env.width, env.height);
      // Longitude wraps; Replicate handles the poles and the (rare) x at
      // the wrap column within a pixel of the seam.
      sample(env, static_cast<float>(uv.x), static_cast<float>(uv.y),
             img::BorderMode::Replicate, 0,
             row + static_cast<std::size_t>(x) * env.channels);
    }
  }
  return out;
}

img::Image8 make_street_environment(int width, int height) {
  FE_EXPECTS(width >= 8 && height >= 8);
  img::Image8 env(width, height, 3);
  const int horizon = height * 60 / 100;

  for (int y = 0; y < height; ++y) {
    std::uint8_t* row = env.row(y);
    if (y < horizon) {
      const double t = static_cast<double>(y) / horizon;
      for (int x = 0; x < width; ++x) {
        row[x * 3 + 0] = static_cast<std::uint8_t>(120 + 50 * t);
        row[x * 3 + 1] = static_cast<std::uint8_t>(150 + 45 * t);
        row[x * 3 + 2] = static_cast<std::uint8_t>(190 + 40 * t);
      }
    } else {
      for (int x = 0; x < width; ++x) {
        row[x * 3 + 0] = 78;
        row[x * 3 + 1] = 78;
        row[x * 3 + 2] = 82;
      }
    }
  }

  // Buildings: deterministic skyline that wraps (the last block is forced
  // to end exactly at width).
  util::Rng rng(7);
  int x = 0;
  while (x < width) {
    int bw = 40 + static_cast<int>(rng.next_below(80));
    if (width - (x + bw) < 40) bw = width - x;  // close the wrap seamlessly
    const int bh = height / 8 + static_cast<int>(rng.next_below(
                                    static_cast<std::uint64_t>(height) / 4));
    const auto shade = static_cast<std::uint8_t>(70 + rng.next_below(80));
    for (int yy = std::max(0, horizon - bh); yy < horizon; ++yy) {
      std::uint8_t* row = env.row(yy);
      for (int xx = x; xx < x + bw && xx < width; ++xx) {
        row[xx * 3 + 0] = shade;
        row[xx * 3 + 1] = static_cast<std::uint8_t>(shade * 9 / 10);
        row[xx * 3 + 2] = static_cast<std::uint8_t>(shade * 8 / 10);
      }
    }
    // Window grid.
    for (int wy = horizon - bh + 6; wy < horizon - 4; wy += 12) {
      if (wy < 0) continue;
      std::uint8_t* row = env.row(wy);
      for (int wx = x + 4; wx < x + bw - 4 && wx < width; wx += 10)
        for (int k = 0; k < 5 && wx + k < width; ++k) {
          row[(wx + k) * 3 + 0] = 235;
          row[(wx + k) * 3 + 1] = 228;
          row[(wx + k) * 3 + 2] = 160;
        }
    }
    x += bw + 8;
  }

  // Road dashes below the horizon.
  for (int ly = horizon + 12; ly < height - 4; ly += 28) {
    std::uint8_t* row = env.row(ly);
    for (int lx = 0; lx < width; lx += 48)
      for (int k = 0; k < 24 && lx + k < width; ++k) {
        row[(lx + k) * 3 + 0] = 230;
        row[(lx + k) * 3 + 1] = 230;
        row[(lx + k) * 3 + 2] = 205;
      }
  }
  return env;
}

}  // namespace fisheye::stitch
