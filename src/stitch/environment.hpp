// Environment-map rendering: the multi-camera test-data generator.
//
// A single planar scene cannot feed a rig of cameras pointing in different
// directions; an equirectangular environment texture (a full 360x180-degree
// light field at infinity) can. Each rig camera's input frame is rendered
// by tracing every fisheye pixel to a world ray and sampling the
// environment — giving every stitching experiment a pixel-accurate ground
// truth: the stitched panorama should reproduce the environment itself.
#pragma once

#include "core/camera.hpp"
#include "core/interp.hpp"
#include "image/image.hpp"
#include "util/matrix.hpp"

namespace fisheye::stitch {

/// Equirectangular texture coordinates of a world ray: longitude in
/// [-pi, pi) maps to x in [0, width), latitude (+down) in [-pi/2, pi/2]
/// maps to y in [0, height).
util::Vec2 environment_coords(util::Vec3 world_ray, int env_width,
                              int env_height);

/// Inverse: the world ray seen by environment texel (x, y).
util::Vec3 environment_ray(double x, double y, int env_width, int env_height);

/// Render the fisheye frame a camera with rotation `world_from_cam` sees of
/// the environment. Pixels beyond the lens field sample along their
/// (saturated) ray — in practice the lens' max_theta bounds what is seen.
img::Image8 render_from_environment(img::ConstImageView<std::uint8_t> env,
                                    const core::FisheyeCamera& camera,
                                    const util::Mat3& world_from_cam,
                                    int width, int height,
                                    core::Interp interp = core::Interp::Bilinear);

/// Synthetic 360-degree street environment (wraps horizontally without a
/// seam): sky band, building skyline, road band; deterministic.
img::Image8 make_street_environment(int width, int height);

}  // namespace fisheye::stitch
