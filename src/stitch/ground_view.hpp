// Bird's-eye (top-down) output projection for surround-view rigs.
//
// The rig sits `height_m` above a flat ground plane; output pixel (x, y)
// corresponds to the ground point ((x - cx) * mpp, (cy - y) * mpp) metres
// right/ahead of the rig, seen along the ray from the rig origin to that
// point. Combined with PanoramaStitcher this yields the classic automotive
// top-down parking view. Pure-rotation rig assumption: all cameras share
// the rig origin (valid when baseline << height).
#pragma once

#include "core/projection.hpp"
#include "util/error.hpp"

namespace fisheye::stitch {

class GroundPlaneView final : public core::ViewProjection {
 public:
  /// `meters_per_pixel` scales the output; `height_m` the rig height.
  GroundPlaneView(int width, int height, double meters_per_pixel,
                  double height_m)
      : width_(width),
        height_(height),
        mpp_(meters_per_pixel),
        rig_height_(height_m) {
    FE_EXPECTS(width > 1 && height > 1);
    FE_EXPECTS(meters_per_pixel > 0.0 && height_m > 0.0);
  }

  /// Ray to the ground point; +image-up is +world-forward (+Z), +image-
  /// right is +world-right (+X), and the ground lies toward +Y (down).
  [[nodiscard]] util::Vec3 ray_for_pixel(util::Vec2 px) const override {
    const double gx = (px.x - 0.5 * (width_ - 1)) * mpp_;
    const double gz = (0.5 * (height_ - 1) - px.y) * mpp_;
    return {gx, rig_height_, gz};
  }

  [[nodiscard]] std::string name() const override { return "ground-plane"; }
  [[nodiscard]] int width() const noexcept override { return width_; }
  [[nodiscard]] int height() const noexcept override { return height_; }

 private:
  int width_;
  int height_;
  double mpp_;
  double rig_height_;
};

}  // namespace fisheye::stitch
