// F13 — YUV-native correction vs the RGB-round-trip pipeline.
//
// Sensor delivers 4:2:0; the naive path converts to RGB, remaps three
// interleaved channels, and converts back. The native path remaps the Y
// plane plus two quarter-size chroma planes — 1.5 planes of work and zero
// conversions.
#include "image/convert.hpp"
#include "image/metrics.hpp"
#include "video/yuv_corrector.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F13", "YUV-native vs RGB-round-trip pipeline (serial)");

  util::Table table({"resolution", "path", "ms/frame", "fps",
                     "PSNR vs rgb path dB"});
  const auto backend = bench::make_backend("serial");
  for (const auto& res : {rt::kResolutions[2], rt::kResolutions[3]}) {
    const int w = res.width, h = res.height;
    const img::Image8 rgb = bench::make_input(w, h, 3);
    const img::Yuv420 yuv = img::rgb_to_yuv420(rgb.view());
    const int reps = bench::reps_for(w, h, 6);

    const core::Corrector rgb_corr = core::Corrector::builder(w, h).build();
    const video::YuvCorrector yuv_corr(
        core::Corrector::builder(w, h).config());

    // RGB round trip: decode, remap interleaved RGB, encode.
    img::Image8 rgb_out(w, h, 3);
    const rt::RunStats rgb_stats = rt::measure(
        [&] {
          const img::Image8 decoded = img::yuv420_to_rgb(yuv);
          rgb_corr.correct(decoded.view(), rgb_out.view(), *backend);
          const img::Yuv420 encoded = img::rgb_to_yuv420(rgb_out.view());
          (void)encoded;
        },
        reps);

    // Native: three plane remaps.
    img::Yuv420 native_out;
    const rt::RunStats native_stats = rt::measure(
        [&] { native_out = yuv_corr.correct_frame(yuv, *backend); }, reps);

    const img::Image8 reference = [&] {
      const img::Image8 decoded = img::yuv420_to_rgb(yuv);
      img::Image8 out(w, h, 3);
      rgb_corr.correct(decoded.view(), out.view(), *backend);
      return out;
    }();
    const img::Image8 native_rgb = img::yuv420_to_rgb(native_out);

    table.row()
        .add(res.name)
        .add("rgb round-trip")
        .add(rgb_stats.median * 1e3, 2)
        .add(rt::fps_from_seconds(rgb_stats.median), 1)
        .add("ref");
    table.row()
        .add(res.name)
        .add("yuv native")
        .add(native_stats.median * 1e3, 2)
        .add(rt::fps_from_seconds(native_stats.median), 1)
        .add(img::psnr(reference.view(), native_rgb.view()), 1);
  }
  table.print(std::cout, "F13: pipeline formats");
  std::cout << "expected shape: native path is a multiple faster (no "
               "conversions, 1.5 gray-planes of remap instead of one "
               "3-channel frame) at visually identical output.\n";
  return 0;
}
