// Shared setup for the experiment binaries: synthetic fisheye inputs and
// measurement helpers. Every bench prints through util::Table so outputs
// are uniform and diffable across runs; bench::init() additionally mirrors
// every printed table to a JSON file when --json is passed.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/image.hpp"
#include "runtime/report.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"
#include "video/pipeline.hpp"

namespace fisheye::bench {

namespace detail {

struct CliState {
  std::string program;
  std::string json_path;
  bool quick = false;
  std::vector<std::string> records;  ///< serialized table objects, in order
};

inline CliState& cli_state() {
  static CliState s;
  return s;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Table::print listener: serialize the table as {program, title,
/// rows: [{header: cell}, ...]} and rewrite the JSON file (an array of all
/// tables printed so far), so partial output survives a crashed bench.
/// A row annotated with a resolved backend spec (Table::annotate) gains a
/// "spec" key, and every keyed annotation (annotate(key, note) — e.g. the
/// model-zoo bench's "lens" token) its own key — additive, so existing
/// BENCH_*.json schemas stay valid.
inline void on_table_print(const util::Table& table, const std::string& title) {
  CliState& st = cli_state();
  if (st.json_path.empty()) return;
  std::ostringstream os;
  os << "  {\"program\": \"" << json_escape(st.program) << "\",\n"
     << "   \"title\": \"" << json_escape(title) << "\",\n"
     << "   \"rows\": [";
  bool first_row = true;
  for (std::size_t r = 0; r < table.rows().size(); ++r) {
    const auto& row = table.rows()[r];
    os << (first_row ? "\n" : ",\n") << "    {";
    first_row = false;
    for (std::size_t c = 0; c < row.size() && c < table.header().size(); ++c) {
      if (c > 0) os << ", ";
      os << '"' << json_escape(table.header()[c]) << "\": \""
         << json_escape(row[c]) << '"';
    }
    bool first_note = row.empty();
    for (const auto& [key, note] : table.annotations(r)) {
      os << (first_note ? "" : ", ") << '"' << json_escape(key) << "\": \""
         << json_escape(note) << '"';
      first_note = false;
    }
    os << '}';
  }
  os << (first_row ? "]}" : "\n  ]}");
  st.records.push_back(os.str());
  std::ofstream out(st.json_path);
  if (!out) {
    std::cerr << st.program << ": cannot write " << st.json_path << '\n';
    return;
  }
  out << "[\n";
  for (std::size_t i = 0; i < st.records.size(); ++i)
    out << st.records[i] << (i + 1 < st.records.size() ? ",\n" : "\n");
  out << "]\n";
}

}  // namespace detail

/// Parse the flags shared by every fig/tab binary:
///   --json <path>   mirror every printed table to <path> as a JSON array
///                   of {program, title, rows: [{header: cell}]} objects
///   --quick         minimal repetitions (CI smoke runs)
/// Unknown arguments print usage and exit with status 2.
inline void init(int argc, char** argv) {
  detail::CliState& st = detail::cli_state();
  if (argc > 0 && argv[0] != nullptr) {
    st.program = argv[0];
    const std::size_t slash = st.program.find_last_of('/');
    if (slash != std::string::npos) st.program.erase(0, slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      st.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      st.json_path = arg.substr(7);
    } else if (arg == "--quick") {
      st.quick = true;
    } else {
      std::cerr << "usage: " << st.program << " [--json <path>] [--quick]\n";
      std::exit(2);
    }
  }
  util::set_table_print_listener(&detail::on_table_print);
}

/// True when --quick was passed: repetition helpers drop to one rep so CI
/// smoke jobs finish in seconds.
inline bool quick() { return detail::cli_state().quick; }

/// Deterministic fisheye input frame (equidistant, 180 degrees) rendered
/// from the synthetic street scene.
inline img::Image8 make_input(int w, int h, int ch = 1) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, w, h);
  const video::SyntheticVideoSource source(cam, w, h, ch);
  return source.frame(0);
}

/// Benches construct every backend through the registry so each experiment
/// is reproducible from its printed spec string alone.
inline std::unique_ptr<core::Backend> make_backend(const std::string& spec) {
  return core::BackendRegistry::create(spec);
}

/// Median steady-state seconds per frame for `backend` correcting `src`
/// via `corr`: the plan is built once up front, frames pay execution only.
inline rt::RunStats measure_backend(const core::Corrector& corr,
                                    img::ConstImageView<std::uint8_t> src,
                                    core::Backend& backend, int reps,
                                    int warmup = 1) {
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  const core::Corrector::Prepared prepared =
      corr.prepare(backend, src.channels);
  return rt::measure(
      [&] { corr.correct(prepared, src, out.view()); }, reps, warmup);
}

/// measure_backend for a registry spec string.
inline rt::RunStats measure_spec(const core::Corrector& corr,
                                 img::ConstImageView<std::uint8_t> src,
                                 const std::string& spec, int reps,
                                 int warmup = 1) {
  const std::unique_ptr<core::Backend> backend = make_backend(spec);
  return measure_backend(corr, src, *backend, reps, warmup);
}

/// Measurement plus the executed plan's uniform per-tile report (count,
/// min/max/mean tile time, imbalance, bytes) — the same fields for every
/// backend kind.
struct BackendRun {
  rt::RunStats run;
  rt::TileStats tiles;
  std::string name;  ///< canonical spec of the instance that ran
};

inline BackendRun run_spec(const core::Corrector& corr,
                           img::ConstImageView<std::uint8_t> src,
                           const std::string& spec, int reps, int warmup = 1) {
  const std::unique_ptr<core::Backend> backend = make_backend(spec);
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  const core::Corrector::Prepared prepared =
      corr.prepare(*backend, src.channels);
  rt::RunStats run = rt::measure(
      [&] { corr.correct(prepared, src, out.view()); }, reps, warmup);
  return {std::move(run), prepared.plan.tile_stats(), backend->name()};
}

/// Repetition count scaled down for large frames so the whole suite stays
/// fast: ~`base` reps at VGA, fewer as pixel count grows.
inline int reps_for(int w, int h, int base = 9) {
  if (quick()) return 1;
  const double mp = static_cast<double>(w) * h / (640.0 * 480.0);
  const int reps = static_cast<int>(base / mp);
  return reps < 3 ? 3 : reps;
}

}  // namespace fisheye::bench
