// Shared setup for the experiment binaries: synthetic fisheye inputs and
// measurement helpers. Every bench prints through util::Table so outputs
// are uniform and diffable across runs.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "core/backend_registry.hpp"
#include "core/corrector.hpp"
#include "image/image.hpp"
#include "runtime/report.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"
#include "video/pipeline.hpp"

namespace fisheye::bench {

/// Deterministic fisheye input frame (equidistant, 180 degrees) rendered
/// from the synthetic street scene.
inline img::Image8 make_input(int w, int h, int ch = 1) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, w, h);
  const video::SyntheticVideoSource source(cam, w, h, ch);
  return source.frame(0);
}

/// Benches construct every backend through the registry so each experiment
/// is reproducible from its printed spec string alone.
inline std::unique_ptr<core::Backend> make_backend(const std::string& spec) {
  return core::BackendRegistry::create(spec);
}

/// Median steady-state seconds per frame for `backend` correcting `src`
/// via `corr`: the plan is built once up front, frames pay execution only.
inline rt::RunStats measure_backend(const core::Corrector& corr,
                                    img::ConstImageView<std::uint8_t> src,
                                    core::Backend& backend, int reps,
                                    int warmup = 1) {
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  const core::Corrector::Prepared prepared =
      corr.prepare(backend, src.channels);
  return rt::measure(
      [&] { corr.correct(prepared, src, out.view()); }, reps, warmup);
}

/// measure_backend for a registry spec string.
inline rt::RunStats measure_spec(const core::Corrector& corr,
                                 img::ConstImageView<std::uint8_t> src,
                                 const std::string& spec, int reps,
                                 int warmup = 1) {
  const std::unique_ptr<core::Backend> backend = make_backend(spec);
  return measure_backend(corr, src, *backend, reps, warmup);
}

/// Measurement plus the executed plan's uniform per-tile report (count,
/// min/max/mean tile time, imbalance, bytes) — the same fields for every
/// backend kind.
struct BackendRun {
  rt::RunStats run;
  rt::TileStats tiles;
  std::string name;  ///< canonical spec of the instance that ran
};

inline BackendRun run_spec(const core::Corrector& corr,
                           img::ConstImageView<std::uint8_t> src,
                           const std::string& spec, int reps, int warmup = 1) {
  const std::unique_ptr<core::Backend> backend = make_backend(spec);
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  const core::Corrector::Prepared prepared =
      corr.prepare(*backend, src.channels);
  rt::RunStats run = rt::measure(
      [&] { corr.correct(prepared, src, out.view()); }, reps, warmup);
  return {std::move(run), prepared.plan.tile_stats(), backend->name()};
}

/// Repetition count scaled down for large frames so the whole suite stays
/// fast: ~`base` reps at VGA, fewer as pixel count grows.
inline int reps_for(int w, int h, int base = 9) {
  const double mp = static_cast<double>(w) * h / (640.0 * 480.0);
  const int reps = static_cast<int>(base / mp);
  return reps < 3 ? 3 : reps;
}

}  // namespace fisheye::bench
