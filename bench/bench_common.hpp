// Shared setup for the experiment binaries: synthetic fisheye inputs and
// measurement helpers. Every bench prints through util::Table so outputs
// are uniform and diffable across runs.
#pragma once

#include <iostream>
#include <string>

#include "core/corrector.hpp"
#include "image/image.hpp"
#include "runtime/report.hpp"
#include "runtime/stats.hpp"
#include "util/table.hpp"
#include "video/pipeline.hpp"

namespace fisheye::bench {

/// Deterministic fisheye input frame (equidistant, 180 degrees) rendered
/// from the synthetic street scene.
inline img::Image8 make_input(int w, int h, int ch = 1) {
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::kPi, w, h);
  const video::SyntheticVideoSource source(cam, w, h, ch);
  return source.frame(0);
}

/// Median seconds per frame for `backend` correcting `src` via `corr`.
inline rt::RunStats measure_backend(const core::Corrector& corr,
                                    img::ConstImageView<std::uint8_t> src,
                                    core::Backend& backend, int reps,
                                    int warmup = 1) {
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  return rt::measure(
      [&] { corr.correct(src, out.view(), backend); }, reps, warmup);
}

/// Repetition count scaled down for large frames so the whole suite stays
/// fast: ~`base` reps at VGA, fewer as pixel count grows.
inline int reps_for(int w, int h, int base = 9) {
  const double mp = static_cast<double>(w) * h / (640.0 * 480.0);
  const int reps = static_cast<int>(base / mp);
  return reps < 3 ? 3 : reps;
}

}  // namespace fisheye::bench
