// F5 — Cell-sim scaling: modeled fps vs SPE count, single vs double
// buffering. These numbers come from the cycle model (3.2 GHz SPEs), not
// host timing, so the curve is host-independent.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F5", "Cell-sim: fps vs #SPEs, 720p gray, bilinear");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  img::Image8 out(w, h, 1);

  util::Table table({"SPEs", "buffering", "modeled fps", "speedup",
                     "utilization", "DMA MB/frame"});
  for (const bool dbuf : {false, true}) {
    double fps1 = 0.0;
    for (const int spes : {1, 2, 4, 6, 8}) {
      const auto backend = bench::make_backend(
          "cell:spes=" + std::to_string(spes) + (dbuf ? "" : ",sbuf"));
      corr.correct(src.view(), out.view(), *backend);
      const accel::AccelFrameStats& stats =
          dynamic_cast<const accel::CellBackend&>(*backend).last_stats();
      if (spes == 1) fps1 = stats.fps;
      table.row()
          .add(spes)
          .add(dbuf ? "double" : "single")
          .add(stats.fps, 1)
          .add(stats.fps / fps1, 2)
          .add(stats.utilization, 2)
          .add(static_cast<double>(stats.bytes_in + stats.bytes_out) / 1e6,
               2);
    }
  }
  table.print(std::cout, "F5: SPE scaling");
  std::cout << "expected shape: near-linear scaling while compute-bound; "
               "double buffering lifts the whole curve by hiding DMA, and "
               "the gap widens with SPE count as transfers matter more.\n";
  return 0;
}
