// T1 — Per-frame profile of the full video path at 1080p: pixel-format
// conversion, correction kernel, and the one-time setup costs, plus the
// kernel's arithmetic-intensity accounting.
#include "image/convert.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("T1", "per-frame profile, 1080p RGB pipeline");

  const int w = 1920, h = 1080;
  const img::Image8 rgb = bench::make_input(w, h, 3);
  const int reps = bench::reps_for(w, h, 6);

  // One-time setup.
  const rt::Stopwatch map_sw;
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const double map_ms = map_sw.elapsed_ms();
  const rt::Stopwatch pack_sw;
  const core::PackedMap packed = core::pack_map(*corr.map(), w, h, 14);
  const double pack_ms = pack_sw.elapsed_ms();

  // Steady-state stages.
  const auto serial = bench::make_backend("serial");
  img::Image8 out(w, h, 3);
  const rt::RunStats to_yuv = rt::measure(
      [&] { (void)img::rgb_to_yuv420(rgb.view()); }, reps);
  const img::Yuv420 yuv = img::rgb_to_yuv420(rgb.view());
  const rt::RunStats from_yuv =
      rt::measure([&] { (void)img::yuv420_to_rgb(yuv); }, reps);
  const rt::RunStats remap_rgb =
      bench::measure_backend(corr, rgb.view(), *serial, reps);
  const img::Image8 gray = img::rgb_to_gray(rgb.view());
  const rt::RunStats remap_gray =
      bench::measure_backend(corr, gray.view(), *serial, reps);

  const double frame_ms =
      (from_yuv.median + remap_rgb.median + to_yuv.median) * 1e3;
  util::Table table({"stage", "ms", "% of frame"});
  auto add = [&](const char* name, double ms) {
    table.row().add(name).add(ms, 2).add(100.0 * ms / frame_ms, 1);
  };
  add("yuv420 -> rgb", from_yuv.median * 1e3);
  add("remap rgb (bilinear lut)", remap_rgb.median * 1e3);
  add("rgb -> yuv420", to_yuv.median * 1e3);
  table.print(std::cout, "T1a: steady-state stages (sum = 100%)");

  util::Table once({"one-time cost", "ms"});
  once.row().add("float map generation").add(map_ms, 1);
  once.row().add("fixed-point packing").add(pack_ms, 1);
  once.row().add("remap gray-only (for reference)").add(
      remap_gray.median * 1e3, 2);
  once.print(std::cout, "T1b: setup and variants");

  // Arithmetic-intensity accounting for the bilinear LUT kernel.
  const double px = static_cast<double>(w) * h;
  const double valid = core::valid_fraction(*corr.map(), w, h);
  const double bytes =
      px * (8.0 /*map*/ + 3.0 /*out*/ ) + valid * px * 4.0 * 3.0 /*taps*/;
  const double flops = valid * px * 3.0 * 8.0;  // 4 madds + weights per ch
  util::Table ai({"metric", "value"});
  ai.row().add("valid map fraction").add(valid, 3);
  ai.row().add("bytes/frame (model, MB)").add(bytes / 1e6, 1);
  ai.row().add("flops/frame (model, M)").add(flops / 1e6, 1);
  ai.row().add("arithmetic intensity (flop/byte)").add(flops / bytes, 3);
  ai.print(std::cout, "T1c: kernel accounting");
  std::cout << "expected shape: the remap dominates the frame; intensity "
               "well under 1 flop/byte marks the kernel memory-bound, "
               "which is why LUT layout and tiling decide performance.\n";
  return 0;
}
