// F3 — LUT-based remap vs on-the-fly coordinate computation.
//
// The precompute-vs-recompute trade: a float LUT costs 8 bytes/pixel of
// memory traffic but no trig; on-the-fly costs an atan per pixel. Also
// reports the fast-math (polynomial atan) middle ground, the packed
// fixed-point LUT, the block-subsampled compact LUT (~stride^2 smaller,
// coordinates reconstructed on the fly), and each LUT's memory footprint
// + one-time build cost.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F3", "LUT vs on-the-fly mapping (serial, bilinear)");

  util::Table table({"resolution", "strategy", "lut MB", "build ms",
                     "ms/frame", "fps"});
  const auto serial = bench::make_backend("serial");
  for (const auto& res : {rt::kResolutions[2], rt::kResolutions[3]}) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const int reps = bench::reps_for(res.width, res.height, 6);

    struct Strategy {
      const char* name;
      core::MapMode mode;
      bool fast_math;
    };
    const Strategy strategies[] = {
        {"float-lut", core::MapMode::FloatLut, false},
        {"packed-lut", core::MapMode::PackedLut, false},
        {"compact-lut", core::MapMode::CompactLut, false},
        {"otf-libm", core::MapMode::OnTheFly, false},
        {"otf-fast", core::MapMode::OnTheFly, true},
    };
    for (const Strategy& s : strategies) {
      const rt::Stopwatch build_sw;
      const core::Corrector corr = core::Corrector::builder(res.width,
                                                            res.height)
                                       .map_mode(s.mode)
                                       .fast_math(s.fast_math)
                                       .build();
      const double build_ms = build_sw.elapsed_ms();
      double lut_mb = 0.0;
      if (s.mode == core::MapMode::FloatLut && corr.map() != nullptr)
        lut_mb = static_cast<double>(corr.map()->bytes()) / 1e6;
      if (s.mode == core::MapMode::PackedLut && corr.packed() != nullptr)
        lut_mb = static_cast<double>(corr.packed()->bytes()) / 1e6;
      if (s.mode == core::MapMode::CompactLut && corr.compact() != nullptr)
        lut_mb = static_cast<double>(corr.compact()->bytes()) / 1e6;

      const rt::RunStats stats =
          bench::measure_backend(corr, src.view(), *serial, reps);
      table.row()
          .add(res.name)
          .add(s.name)
          .add(lut_mb, 1)
          .add(build_ms, 1)
          .add(stats.median * 1e3, 2)
          .add(rt::fps_from_seconds(stats.median), 1);
    }
  }
  table.print(std::cout, "F3: mapping strategies");
  std::cout << "expected shape: LUTs beat on-the-fly by a wide margin per "
               "frame; fast-math atan recovers part of the gap; the LUT "
               "build cost amortizes after a few frames.\n";
  return 0;
}
