// F1 — Speedup vs thread count.
//
// The study's headline multicore figure: per-frame time and speedup of the
// bilinear float-LUT kernel across 1..8 worker threads at three
// resolutions, static row-block scheduling.
//
// NOTE: measured speedup reflects the hardware this runs on; on a
// single-core container the curve is flat and the table says so honestly.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F1", "speedup vs thread count (static row blocks, "
                         "bilinear, float LUT)");

  util::Table table({"resolution", "threads", "ms/frame", "fps", "speedup"});
  for (const auto& res : {rt::kResolutions[0], rt::kResolutions[2],
                          rt::kResolutions[3]}) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const core::Corrector corr =
        core::Corrector::builder(res.width, res.height).build();
    const int reps = bench::reps_for(res.width, res.height);

    double t1 = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      const std::string spec =
          "pool:static,rows,threads=" + std::to_string(threads);
      const rt::RunStats stats =
          bench::measure_spec(corr, src.view(), spec, reps);
      if (threads == 1) t1 = stats.median;
      table.row()
          .add(res.name)
          .add(threads)
          .add(stats.median * 1e3, 2)
          .add(rt::fps_from_seconds(stats.median), 1)
          .add(t1 / stats.median, 2);
      table.annotate(spec);
    }
  }
  table.print(std::cout, "F1: thread scaling");
  std::cout << "expected shape: speedup ~= min(threads, hardware cores); "
               "flat on a 1-core host.\n";
  return 0;
}
