// F23 — Virtual-PTZ serving: plan cache + view coalescing under load.
//
// N concurrent viewers each hold an independent pan/tilt/zoom view of one
// shared fisheye stream; per source frame every viewer requests its crop.
// View popularity is zipf-skewed over a fixed hotspot pool — a few popular
// views dominate, a long tail stays cold — which is exactly the regime the
// serving layer is built for: duplicates collapse in the coalescer, popular
// view plans stay resident in the PlanCache, and the per-frame cost decouples
// from the viewer count.
//
// Sweep: requests/s and p50/p99 request→crop latency vs viewer count
// (64 → 2048). Ablation at 512 viewers: warm cache vs cold plans
// (cache_budget=0 — every frame rebuilds its maps and plans) and coalesced
// vs uncoalesced (every request executes alone). The CI smoke job asserts
// the two ratios: warm >= 3x cold, coalesced >= 1.2x uncoalesced.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "serve/server.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisheye;

constexpr int kSrcW = 512;
constexpr int kSrcH = 288;
constexpr int kLevelW = 320;
constexpr int kLevelH = 180;
constexpr std::size_t kHotspots = 64;
constexpr double kZipfExponent = 1.1;
constexpr std::uint64_t kWarmTag = std::numeric_limits<std::uint64_t>::max();

/// The zoom pyramid: level 0 wide (focal auto-matched to the lens), levels
/// 1-2 progressively zoomed in.
std::vector<serve::LevelSpec> make_levels() {
  return {{kLevelW, kLevelH, 0.0},
          {kLevelW, kLevelH, 150.0},
          {kLevelW, kLevelH, 240.0}};
}

/// The fixed hotspot pool every rung samples from: deterministic rects of
/// assorted sizes spread across the pyramid. Popular hotspots overlap by
/// construction (positions are random over a level much smaller than
/// hotspots * view area), so coalescing has both duplicates and overlaps
/// to harvest.
std::vector<serve::QuantizedView> make_hotspots() {
  util::Rng rng(2301);
  const int widths[] = {96, 112, 128, 144, 160};
  const int heights[] = {64, 80, 96};
  std::vector<serve::QuantizedView> pool;
  pool.reserve(kHotspots);
  for (std::size_t k = 0; k < kHotspots; ++k) {
    const int level = static_cast<int>(k % 3);
    const int w = widths[rng.next_below(std::size(widths))];
    const int h = heights[rng.next_below(std::size(heights))];
    const int x = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(kLevelW - w + 1)));
    const int y = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(kLevelH - h + 1)));
    pool.push_back({level, {x, y, x + w, y + h}});
  }
  return pool;
}

/// Zipf-skewed viewer → hotspot assignment: viewer ranks follow
/// P(k) ~ 1/(k+1)^s, deterministic per rung.
std::vector<std::size_t> assign_viewers(std::size_t viewers) {
  std::vector<double> cdf(kHotspots);
  double total = 0.0;
  for (std::size_t k = 0; k < kHotspots; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), kZipfExponent);
    cdf[k] = total;
  }
  util::Rng rng(7001 + viewers);
  std::vector<std::size_t> assignment(viewers);
  for (std::size_t i = 0; i < viewers; ++i) {
    const double u = rng.next_double() * total;
    assignment[i] = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (assignment[i] >= kHotspots) assignment[i] = kHotspots - 1;
  }
  return assignment;
}

struct LoadResult {
  double wall_seconds = 0.0;
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double clusters_per_frame = 0.0;
  double hit_rate = 0.0;
  double tiles_saved = 0.0;  ///< tiles_requested / tiles_executed
  std::size_t requests = 0;
};

/// Drive `viewers` clients for `frames` source frames through one Server
/// configured by `spec`. Frames pipeline through the queue (requests for
/// frame f+1 accumulate while frame f is in flight); two warmup frames
/// populate the cache and arenas, then the measured frames are timed and
/// every request's retire latency recorded.
LoadResult run_load(par::ThreadPool& pool,
                    const std::vector<img::Image8>& inputs,
                    std::size_t viewers, int frames,
                    const std::string& spec) {
  const std::vector<serve::QuantizedView> hotspots = make_hotspots();
  const std::vector<std::size_t> assignment = assign_viewers(viewers);

  serve::ServerConfig cfg;
  cfg.src_width = kSrcW;
  cfg.src_height = kSrcH;
  cfg.fov_rad = util::kPi;
  cfg.levels = make_levels();
  serve::Server server(cfg, serve::ServeOptions::parse(spec), pool);

  // One crop buffer per viewer, reused across frames. With the frame queue
  // a viewer can have two requests in flight against the same buffer; the
  // bench measures throughput/latency, the exactness tests own content.
  std::vector<img::Image8> crops;
  crops.reserve(viewers);
  for (std::size_t i = 0; i < viewers; ++i) {
    const par::Rect r = hotspots[assignment[i]].rect;
    crops.emplace_back(r.width(), r.height(), 1);
  }

  std::vector<double> latencies(
      static_cast<std::size_t>(frames) * viewers, 0.0);
  server.set_retire(
      [&latencies](std::uint64_t, std::uint64_t tag, double latency) {
        if (tag != kWarmTag) latencies[tag] = latency;
      });

  const auto frame = [&](int f, bool measured) {
    for (std::size_t i = 0; i < viewers; ++i) {
      const serve::QuantizedView& v = hotspots[assignment[i]];
      const std::uint64_t tag =
          measured ? static_cast<std::uint64_t>(f) * viewers + i : kWarmTag;
      server.request(v.level, v.rect, crops[i].view(), tag);
    }
    server.submit_frame(inputs[static_cast<std::size_t>(f) % inputs.size()]
                            .cview());
  };

  for (int f = 0; f < 2; ++f) frame(f, false);
  server.drain();
  const rt::ServeStats warm = server.stats();

  const rt::Stopwatch wall;
  for (int f = 0; f < frames; ++f) frame(f, true);
  server.drain();

  LoadResult r;
  r.wall_seconds = wall.elapsed_seconds();
  r.requests = static_cast<std::size_t>(frames) * viewers;
  r.req_per_s = static_cast<double>(r.requests) / r.wall_seconds;
  r.p50_ms = rt::percentile(latencies, 50.0) * 1e3;
  r.p99_ms = rt::percentile(latencies, 99.0) * 1e3;
  const rt::ServeStats st = server.stats();
  const std::size_t frames_d = st.frames - warm.frames;
  const std::size_t clusters_d = st.clusters - warm.clusters;
  const std::size_t hits_d = st.plan_hits - warm.plan_hits;
  const std::size_t misses_d = st.plan_misses - warm.plan_misses;
  const std::size_t texec_d = st.tiles_executed - warm.tiles_executed;
  const std::size_t treq_d = st.tiles_requested - warm.tiles_requested;
  r.clusters_per_frame =
      frames_d ? static_cast<double>(clusters_d) / frames_d : 0.0;
  r.hit_rate = hits_d + misses_d
                   ? static_cast<double>(hits_d) / (hits_d + misses_d)
                   : 0.0;
  r.tiles_saved =
      texec_d ? static_cast<double>(treq_d) / texec_d : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F23",
                   "virtual-PTZ serving: plan cache + coalescing under load");

  const unsigned workers =
      std::clamp(std::thread::hardware_concurrency(), 2u, 8u);
  par::ThreadPool pool(workers);
  const int frames = bench::quick() ? 6 : 20;
  const std::string base_spec =
      "serve:lanes=4,queue_depth=4,pending=4096,quantum=16,tile=32x32";

  // Shared 3-frame source loop (rendering is not what F23 measures).
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::kPi, kSrcW, kSrcH);
  const video::SyntheticVideoSource source(cam, kSrcW, kSrcH, 1);
  std::vector<img::Image8> inputs;
  for (int f = 0; f < 3; ++f) inputs.push_back(source.frame(f));

  const std::vector<std::size_t> sweep =
      bench::quick() ? std::vector<std::size_t>{64, 256, 512}
                     : std::vector<std::size_t>{64, 128, 256, 512, 1024, 2048};

  util::Table table({"viewers", "frames", "requests", "wall s", "req/s",
                     "p50 ms", "p99 ms", "clusters/frame", "hit rate",
                     "tiles saved"});
  for (const std::size_t viewers : sweep) {
    const LoadResult r = run_load(pool, inputs, viewers, frames, base_spec);
    table.row()
        .add(viewers)
        .add(frames)
        .add(r.requests)
        .add(r.wall_seconds, 3)
        .add(r.req_per_s, 0)
        .add(r.p50_ms, 3)
        .add(r.p99_ms, 3)
        .add(r.clusters_per_frame, 1)
        .add(r.hit_rate, 3)
        .add(r.tiles_saved, 2);
  }
  table.print(std::cout, "F23: serving throughput vs viewer count");

  // Ablation at 512 viewers: what the cache and the coalescer each buy.
  const std::size_t ablation_viewers = 512;
  const LoadResult warm =
      run_load(pool, inputs, ablation_viewers, frames, base_spec);
  const LoadResult cold = run_load(pool, inputs, ablation_viewers, frames,
                                   base_spec + ",cache_budget=0");
  const LoadResult uncoalesced = run_load(pool, inputs, ablation_viewers,
                                          frames, base_spec + ",coalesce=off");

  util::Table ablation({"mode", "req/s", "p50 ms", "p99 ms", "hit rate",
                        "tiles saved", "warm/x"});
  const auto row = [&](const char* mode, const LoadResult& r) {
    ablation.row()
        .add(mode)
        .add(r.req_per_s, 0)
        .add(r.p50_ms, 3)
        .add(r.p99_ms, 3)
        .add(r.hit_rate, 3)
        .add(r.tiles_saved, 2)
        .add(r.req_per_s > 0.0 ? warm.req_per_s / r.req_per_s : 0.0, 2);
  };
  row("warm", warm);
  row("cold", cold);
  row("uncoalesced", uncoalesced);
  ablation.print(std::cout, "F23: serving-layer ablation at 512 viewers");

  std::cout << "expected shape: req/s grows with viewers while clusters/frame "
               "collapses to a handful — zipf duplicates dedup outright and "
               "overlapping hotspots merge under the union-area guard, so "
               "added viewers cost crop copies, not kernel work. The ablation "
               "shows both "
               "mechanisms: cold plans (cache_budget=0) rebuild every view's "
               "maps each frame (warm >= 3x), and uncoalesced serving "
               "re-executes every duplicate (coalesced >= 1.2x).\n";
  return 0;
}
