// F11 — GPU-sim roofline: fps vs SM count, texture-cache geometry, and the
// ALU/bandwidth crossover.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F11", "GPU-sim: SM scaling and texture-cache sweep");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  img::Image8 out(w, h, 1);

  util::Table sm_table({"SMs", "modeled fps", "speedup vs 1", "ALU util",
                        "bound"});
  double fps1 = 0.0;
  for (const int sms : {1, 2, 4, 8, 15, 30, 60, 120}) {
    const auto backend =
        bench::make_backend("gpu:sms=" + std::to_string(sms));
    corr.correct(src.view(), out.view(), *backend);
    const accel::AccelFrameStats& stats =
        dynamic_cast<const accel::GpuBackend&>(*backend).last_stats();
    if (sms == 1) fps1 = stats.fps;
    sm_table.row()
        .add(sms)
        .add(stats.fps, 1)
        .add(stats.fps / fps1, 2)
        .add(stats.utilization, 2)
        .add(stats.utilization > 0.9 ? "ALU" : "DRAM");
  }
  sm_table.print(std::cout, "F11a: SM scaling at 720p");

  util::Table tex_table({"tex cache", "capacity px", "hit rate",
                         "DRAM MB/frame", "fps @30sm"});
  struct Case {
    const char* name;
    accel::BlockCacheConfig cfg;
  };
  // Capacity barely matters (round-robin block dispatch leaves only
  // intra-block locality - a real property of the era's GPUs); the line
  // SHAPE decides how many bytes each compulsory miss drags in.
  const Case cases[] = {
      {"1x1 uncached", {1, 1, 64, 4}},
      {"64x1 lines", {64, 1, 32, 4}},
      {"16x4 (default)", {16, 4, 32, 4}},
      {"8x8 tiles", {8, 8, 32, 4}},
      {"16x4 tiny", {16, 4, 4, 2}},
  };
  for (const Case& c : cases) {
    std::ostringstream spec;
    spec << "gpu:tex=" << c.cfg.block_w << 'x' << c.cfg.block_h << 'x'
         << c.cfg.sets << 'x' << c.cfg.ways;
    const auto backend = bench::make_backend(spec.str());
    corr.correct(src.view(), out.view(), *backend);
    const accel::AccelFrameStats& stats =
        dynamic_cast<const accel::GpuBackend&>(*backend).last_stats();
    tex_table.row()
        .add(c.name)
        .add(c.cfg.capacity_pixels())
        .add(stats.cache_hit_rate(), 4)
        .add(static_cast<double>(stats.bytes_in + stats.bytes_out) / 1e6, 2)
        .add(stats.fps, 1);
  }
  tex_table.print(std::cout, "F11b: texture-cache geometry");
  std::cout << "expected shape: near-linear SM scaling until the roofline knee, "
               "then DRAM-bound saturation; 2D cache lines matched to the "
               "warp footprint minimize miss traffic, while uncached "
               "per-pixel fetches multiply it.\n";
  return 0;
}
