// F16 — Intra-frame vs inter-frame parallelism.
//
// Two ways to use N cores on a video stream: split each frame (low latency,
// synchronization per frame) or run N whole frames concurrently (best
// throughput, N frames of latency). The study-era systems chose per
// use case — surveillance wants latency, offline transcode wants
// throughput.
#include "video/pipeline.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F16", "intra-frame vs inter-frame parallelism, 720p");

  const int w = 1280, h = 720;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::kPi, w, h);
  const video::SyntheticVideoSource source(cam, w, h, 1);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const int frames = 24;

  // The inter-frame rows run on stream::StreamExecutor (the corrector
  // registered as pool-size stream clones over one stealing pool), so the
  // latency columns are real submit→retire measurements per frame and the
  // stolen column counts tiles that crossed between in-flight frames.
  util::Table table({"threads", "strategy", "ms/frame", "fps",
                     "p50 lat ms", "max lat ms", "stolen tiles"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    {
      const auto backend =
          bench::make_backend("pool:threads=" + std::to_string(threads));
      const video::PipelineStats s =
          video::run_pipeline(source, corr, *backend, frames);
      table.row()
          .add(threads)
          .add("intra-frame (split frame)")
          .add(s.per_frame.median * 1e3, 2)
          .add(s.fps, 1)
          .add(s.per_frame.median * 1e3, 2)
          .add(s.per_frame.max * 1e3, 2)
          .add(0);
    }
    {
      const video::PipelineStats s =
          video::run_pipeline_frame_parallel(source, corr, pool, frames);
      std::size_t stolen = 0;
      for (const rt::StreamStats& st : s.streams) stolen += st.tiles_stolen;
      table.row()
          .add(threads)
          .add("inter-frame (frames in flight)")
          .add(s.wall_seconds / frames * 1e3, 2)
          .add(s.fps, 1)
          .add(s.per_frame.median * 1e3, 2)
          .add(s.per_frame.max * 1e3, 2)
          .add(stolen);
    }
  }
  table.print(std::cout, "F16: parallelism granularity");
  std::cout << "expected shape: on real multicore hardware inter-frame wins "
               "throughput (no per-frame barrier) at N frames of latency; "
               "intra-frame tracks it closely for this embarrassingly "
               "parallel kernel. On a 1-core host both are flat.\n";
  return 0;
}
