// F4 — Interpolation kernel sweep: throughput vs quality.
//
// Cost ladder NN -> bilinear -> bicubic -> lanczos3, with quality measured
// against a ground truth rendered directly from the scene (the synthetic
// pipeline's unique capability: pixel-accurate references).
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/synth.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F4", "interpolation kernels at 720p (serial, float LUT)");

  const int w = 1280, h = 720;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::kPi, w, h);
  const video::SyntheticVideoSource source(cam, w, h, 1);
  const img::Image8 fish = source.frame(0);
  const img::Image8 scene = source.scene_frame(0);
  const int reps = bench::reps_for(w, h, 6);

  // Ground truth for the corrected view: sample the *scene* directly with
  // the composed map (scene -> fisheye -> corrected collapses to a pure
  // scale about the centre, see video::SyntheticVideoSource).
  const auto serial = bench::make_backend("serial");
  util::Table table(
      {"kernel", "taps", "ms/frame", "fps", "PSNR dB", "SSIM"});

  // Reference: correct with lanczos3 at double-resolution path is overkill;
  // instead compare every kernel's output against the analytic scene view.
  const core::Corrector ref_corr = core::Corrector::builder(w, h).build();
  const double f_out = ref_corr.config().out_focal;
  const double f_scene = 0.25 * scene.width();
  img::Image8 truth(w, h, 1);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const double sx =
          (scene.width() - 1) * 0.5 + (x - (w - 1) * 0.5) * (f_scene / f_out);
      const double sy =
          (scene.height() - 1) * 0.5 + (y - (h - 1) * 0.5) * (f_scene / f_out);
      std::uint8_t v = 0;
      core::sample_lanczos3(scene.view(), static_cast<float>(sx),
                            static_cast<float>(sy), img::BorderMode::Constant,
                            0, &v);
      truth.at(x, y) = v;
    }

  for (const core::Interp interp :
       {core::Interp::Nearest, core::Interp::Bilinear, core::Interp::Bicubic,
        core::Interp::Lanczos3}) {
    const core::Corrector corr =
        core::Corrector::builder(w, h).interp(interp).build();
    const rt::RunStats stats =
        bench::measure_backend(corr, fish.view(), *serial, reps);
    img::Image8 out(w, h, 1);
    corr.correct(fish.view(), out.view(), *serial);

    // Quality over the central region the fisheye actually saw.
    const int bx = w / 5, by = h / 5;
    img::Image8 out_c(w - 2 * bx, h - 2 * by, 1), truth_c(w - 2 * bx,
                                                          h - 2 * by, 1);
    for (int y = 0; y < out_c.height(); ++y)
      for (int x = 0; x < out_c.width(); ++x) {
        out_c.at(x, y) = out.at(bx + x, by + y);
        truth_c.at(x, y) = truth.at(bx + x, by + y);
      }
    table.row()
        .add(core::interp_name(interp))
        .add(core::interp_support(interp) * core::interp_support(interp))
        .add(stats.median * 1e3, 2)
        .add(rt::fps_from_seconds(stats.median), 1)
        .add(img::psnr(truth_c.view(), out_c.view()), 2)
        .add(img::ssim(truth_c.view(), out_c.view()), 4);
  }
  table.print(std::cout, "F4: interpolation kernels");
  std::cout << "expected shape: cost grows with tap count (1/4/16/36); "
               "bilinear is the quality/throughput knee - higher-order "
               "kernels buy ~1 dB at 4-9x the arithmetic.\n";
  return 0;
}
