// F21 — Work-stealing thread-scaling sweep on a skewed frame.
//
// Companion to F2b: fixes the workload (the off-axis PTZ view whose real
// gather work is concentrated on one side of the frame, the rest constant
// fill) and sweeps thread count x schedule. A static tile split cannot
// scale on this frame — adding threads adds idle lanes on the fill side —
// while dynamic pays shared-cursor traffic and interleaves distant tiles
// on each worker. The steal schedule's claim is that plan-time Morton
// ordering plus steal-half keeps per-worker source locality AND repairs
// the imbalance, so its scaling curve should track or beat dynamic and
// clearly beat static from 4 threads up. The steal counters make the
// mechanism visible: steals grow with thread count, local tiles dominate.
#include "core/projection.hpp"

#include "bench_common.hpp"

namespace {

using namespace fisheye;

bench::BackendRun run_map_spec(const core::WarpMap& map,
                               img::ConstImageView<std::uint8_t> src,
                               img::ImageView<std::uint8_t> dst,
                               const std::string& spec, int reps) {
  const std::unique_ptr<core::Backend> backend = bench::make_backend(spec);
  core::ExecContext ctx;
  ctx.src = src;
  ctx.dst = dst;
  ctx.map = &map;
  ctx.mode = core::MapMode::FloatLut;
  const core::ExecutionPlan plan = backend->plan(ctx);
  rt::RunStats run =
      rt::measure([&] { backend->execute(plan, ctx); }, reps, 1);
  return {std::move(run), plan.tile_stats(), backend->name()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F21",
                   "steal-schedule thread scaling, skewed 1080p frame");

  const int w = 1920, h = 1080;
  const img::Image8 src = bench::make_input(w, h);
  const int reps = bench::reps_for(w, h, 12);

  // Same skewed workload as F2b: narrow lens, hard right pan.
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(100.0), w, h);
  const core::PerspectiveView ptz = core::PerspectiveView::ptz(
      w, h, util::deg_to_rad(75.0), util::deg_to_rad(15.0),
      util::deg_to_rad(110.0));
  const core::WarpMap ptz_map = core::build_map(cam, ptz);
  img::Image8 out(w, h, 1);

  // Serial reference for the speedup column.
  const double serial_s =
      run_map_spec(ptz_map, src.view(), out.view(), "serial", reps)
          .run.median;

  util::Table table({"threads", "schedule", "ms/frame", "speedup",
                     "imbalance", "stolen", "steals"});
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::string sched : {"static", "dynamic", "guided", "steal"}) {
      const bench::BackendRun r = run_map_spec(
          ptz_map, src.view(), out.view(),
          "pool:" + sched + ",tiles,tile=128x64,threads=" +
              std::to_string(threads),
          reps);
      table.row()
          .add(threads)
          .add(sched)
          .add(r.run.median * 1e3, 2)
          .add(serial_s / r.run.median, 2)
          .add(r.tiles.imbalance, 2)
          .add(static_cast<unsigned long long>(r.tiles.stolen_tiles))
          .add(static_cast<unsigned long long>(r.tiles.steals));
    }
  }
  table.print(std::cout, "F21: steal scaling");
  std::cout << "expected shape: static flattens early (idle fill-side "
               "lanes); dynamic and steal keep scaling, with steal matching "
               "dynamic's balance at a fraction of its scheduling traffic - "
               "counters show most tiles stay local to their planned run.\n";
  return 0;
}
