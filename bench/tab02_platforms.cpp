// T2 — The headline platform-comparison table: fps for every platform at
// every resolution (gray, bilinear, constant border).
//
// CPU columns are measured on this host; accelerator columns are cycle-
// model outputs for the era hardware (8-SPE Cell @3.2 GHz with double
// buffering, FPGA @150 MHz with a 64 Kpx 4-way block cache).
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main() {
  using namespace fisheye;
  rt::print_banner("T2", "platform comparison (fps)");
  std::cout << "cpu columns measured on this host; cell/fpga columns are "
               "cycle-model estimates for the simulated hardware.\n";

  par::ThreadPool pool(0);
  util::Table table({"resolution", "serial", "pool", "simd-1t", "simd-pool",
                     "openmp", "cell 8spe", "fpga 150MHz", "gpu 30sm"});
  for (const auto& res : rt::kResolutions) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const core::Corrector fcorr =
        core::Corrector::builder(res.width, res.height).build();
    const core::Corrector pcorr = core::Corrector::builder(res.width,
                                                           res.height)
                                      .map_mode(core::MapMode::PackedLut)
                                      .build();
    const int reps = bench::reps_for(res.width, res.height, 5);

    core::SerialBackend serial;
    core::PoolBackend pooled(pool, {par::Schedule::Dynamic,
                                    par::PartitionKind::RowBlocks, 0, 64,
                                    64});
    core::SimdBackend simd1(nullptr);
    core::SimdBackend simdp(&pool);
    auto fps = [&](core::Backend& b) {
      return rt::fps_from_seconds(
          bench::measure_backend(fcorr, src.view(), b, reps).median);
    };
    const double f_serial = fps(serial);
    const double f_pool = fps(pooled);
    const double f_simd1 = fps(simd1);
    const double f_simdp = fps(simdp);
#ifdef _OPENMP
    core::OpenMpBackend omp;
    const double f_omp = fps(omp);
#else
    const double f_omp = 0.0;
#endif

    img::Image8 out(res.width, res.height, 1);
    accel::CellBackend cell(accel::SpeConfig{});
    fcorr.correct(src.view(), out.view(), cell);
    accel::FpgaBackend fpga(accel::FpgaConfig{});
    pcorr.correct(src.view(), out.view(), fpga);
    accel::GpuBackend gpu(accel::GpuConfig{});
    fcorr.correct(src.view(), out.view(), gpu);

    table.row()
        .add(res.name)
        .add(f_serial, 1)
        .add(f_pool, 1)
        .add(f_simd1, 1)
        .add(f_simdp, 1)
        .add(f_omp, 1)
        .add(cell.last_stats().fps, 1)
        .add(fpga.last_stats().fps, 1)
        .add(gpu.last_stats().fps, 1);
  }
  table.print(std::cout, "T2: platforms x resolutions");
  std::cout << "expected shape: simd > serial at every size; pool tracks "
               "core count; the modeled accelerators sustain real-time "
               "(>30 fps) through 1080p, the study's central claim.\n";
  return 0;
}
