// T2 — The headline platform-comparison table: fps for every platform at
// every resolution (gray, bilinear, constant border).
//
// CPU columns are measured on this host; accelerator columns are cycle-
// model outputs for the era hardware (8-SPE Cell @3.2 GHz with double
// buffering, FPGA @150 MHz with a 64 Kpx 4-way block cache).
//
// Every backend is built from its registry spec (the column header is the
// spec), and the second table prints each backend's uniform per-tile plan
// stats — the same fields whether the tiles are pool chunks, SPE tiles,
// GPU thread blocks, or one streaming FPGA pass.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

namespace {

using namespace fisheye;

/// Modeled fps for the accelerator simulators (their wall time on this host
/// is meaningless; the cycle model's frame time is the result).
double modeled_fps(const core::Backend& b) {
  if (const auto* cell = dynamic_cast<const accel::CellBackend*>(&b))
    return cell->last_stats().fps;
  if (const auto* gpu = dynamic_cast<const accel::GpuBackend*>(&b))
    return gpu->last_stats().fps;
  if (const auto* fpga = dynamic_cast<const accel::FpgaBackend*>(&b))
    return fpga->last_stats().fps;
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  rt::print_banner("T2", "platform comparison (fps)");
  std::cout << "cpu columns measured on this host; cell/fpga/gpu columns are "
               "cycle-model estimates for the simulated hardware.\n";

  util::Table table({"resolution", "serial", "pool", "simd-1t", "simd-pool",
                     "openmp", "cell 8spe", "fpga 150MHz", "gpu 30sm"});
  util::Table tiles({"backend", "tiles", "min ms", "max ms", "mean ms",
                     "imbalance"});
  bool tiles_done = false;
  for (const auto& res : rt::kResolutions) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const core::Corrector fcorr =
        core::Corrector::builder(res.width, res.height).build();
    const core::Corrector pcorr = core::Corrector::builder(res.width,
                                                           res.height)
                                      .map_mode(core::MapMode::PackedLut)
                                      .build();
    const int reps = bench::reps_for(res.width, res.height, 5);

    auto fps = [&](const std::string& spec) {
      return rt::fps_from_seconds(
          bench::measure_spec(fcorr, src.view(), spec, reps).median);
    };
    const double f_serial = fps("serial");
    const double f_pool = fps("pool:dynamic,rows");
    const double f_simd1 = fps("simd:threads=1");
    const double f_simdp = fps("simd");
    const double f_omp = core::BackendRegistry::instance().has("openmp")
                             ? fps("openmp")
                             : 0.0;

    // Accelerator simulators: one corrected frame drives the cycle model.
    img::Image8 out(res.width, res.height, 1);
    const auto cell = bench::make_backend("cell");
    fcorr.correct(src.view(), out.view(), *cell);
    const auto fpga = bench::make_backend("fpga");
    pcorr.correct(src.view(), out.view(), *fpga);
    const auto gpu = bench::make_backend("gpu");
    fcorr.correct(src.view(), out.view(), *gpu);

    table.row()
        .add(res.name)
        .add(f_serial, 1)
        .add(f_pool, 1)
        .add(f_simd1, 1)
        .add(f_simdp, 1)
        .add(f_omp, 1)
        .add(modeled_fps(*cell), 1)
        .add(modeled_fps(*fpga), 1)
        .add(modeled_fps(*gpu), 1);

    // Per-tile plan stats once, at 720p: the uniform instrumentation every
    // backend reports through rt::TileStats.
    if (!tiles_done && res.width == 1280) {
      tiles_done = true;
      for (const std::string& spec :
           {std::string("serial"), std::string("pool:dynamic,rows"),
            std::string("simd")}) {
        const bench::BackendRun r =
            bench::run_spec(fcorr, src.view(), spec, reps);
        tiles.row()
            .add(r.name)
            .add(r.tiles.tiles)
            .add(r.tiles.min_seconds * 1e3, 3)
            .add(r.tiles.max_seconds * 1e3, 3)
            .add(r.tiles.mean_seconds * 1e3, 3)
            .add(r.tiles.imbalance, 2);
      }
      for (const core::Backend* b : {cell.get(), fpga.get(), gpu.get()}) {
        const rt::TileStats ts = b->last_plan().tile_stats();
        tiles.row()
            .add(b->name())
            .add(ts.tiles)
            .add(ts.min_seconds * 1e3, 3)
            .add(ts.max_seconds * 1e3, 3)
            .add(ts.mean_seconds * 1e3, 3)
            .add(ts.imbalance, 2);
      }
    }
  }
  table.print(std::cout, "T2: platforms x resolutions");
  tiles.print(std::cout, "T2b: per-tile plan stats at 720p");
  std::cout << "expected shape: simd > serial at every size; pool tracks "
               "core count; the modeled accelerators sustain real-time "
               "(>30 fps) through 1080p, the study's central claim.\n";
  return 0;
}
