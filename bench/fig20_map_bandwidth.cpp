// F20 — compact block-subsampled maps vs full-resolution LUTs.
//
// The map-bandwidth wall: a packed LUT streams 8 bytes of coordinates per
// output pixel, which saturates memory long before the blend datapath does.
// A compact map stores one fixed-point entry per stride x stride block and
// reconstructs per-pixel coordinates on the fly, cutting map traffic by
// ~stride^2 at the price of a bounded reconstruction error. This bench
// sweeps stride x resolution x backend and reports throughput, map bytes
// per pixel, and the reconstruction error actually incurred.
#include "accel/accel_backend.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F20",
                   "compact maps: bandwidth vs reconstruction error");

  const int strides[] = {4, 8, 16};

  // --- CPU backends: measured host throughput -----------------------------
  util::Table cpu({"resolution", "backend", "map", "map B/px", "max err px",
                   "mean err px", "ms/frame", "fps", "vs packed"});
  for (const auto& res :
       {rt::kResolutions[2], rt::kResolutions[3], rt::kResolutions[4]}) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const core::Corrector corr =
        core::Corrector::builder(res.width, res.height).build();  // FloatLut
    const int reps = bench::reps_for(res.width, res.height, 6);
    const auto out_px = static_cast<double>(res.width) * res.height;

    const rt::RunStats packed =
        bench::measure_spec(corr, src.view(), "pool:threads=0,map=packed",
                            reps);
    cpu.row()
        .add(res.name)
        .add("pool")
        .add("packed")
        .add(8.0, 2)
        .add(0.0, 3)
        .add(0.0, 4)
        .add(packed.median * 1e3, 2)
        .add(rt::fps_from_seconds(packed.median), 1)
        .add(1.0, 2);

    for (const int stride : strides) {
      const core::CompactMap cm = core::compact_map(
          *corr.map(), res.width, res.height, stride);
      const std::string spec =
          "pool:threads=0,map=compact:" + std::to_string(stride);
      const rt::RunStats run = bench::measure_spec(corr, src.view(), spec,
                                                   reps);
      cpu.row()
          .add(res.name)
          .add("pool")
          .add("compact:" + std::to_string(stride))
          .add(static_cast<double>(cm.bytes()) / out_px, 2)
          .add(static_cast<double>(cm.max_error), 3)
          .add(static_cast<double>(cm.mean_error), 4)
          .add(run.median * 1e3, 2)
          .add(rt::fps_from_seconds(run.median), 1)
          .add(packed.median / run.median, 2);
    }

    // SIMD pair: the SoA kernel with its native float LUT vs compact:8.
    const rt::RunStats simd_float =
        bench::measure_spec(corr, src.view(), "simd", reps);
    cpu.row()
        .add(res.name)
        .add("simd")
        .add("float")
        .add(8.0, 2)
        .add(0.0, 3)
        .add(0.0, 4)
        .add(simd_float.median * 1e3, 2)
        .add(rt::fps_from_seconds(simd_float.median), 1)
        .add(packed.median / simd_float.median, 2);
    const core::CompactMap cm8 =
        core::compact_map(*corr.map(), res.width, res.height, 8);
    const rt::RunStats simd_c8 =
        bench::measure_spec(corr, src.view(), "simd:map=compact:8", reps);
    cpu.row()
        .add(res.name)
        .add("simd")
        .add("compact:8")
        .add(static_cast<double>(cm8.bytes()) / out_px, 2)
        .add(static_cast<double>(cm8.max_error), 3)
        .add(static_cast<double>(cm8.mean_error), 4)
        .add(simd_c8.median * 1e3, 2)
        .add(rt::fps_from_seconds(simd_c8.median), 1)
        .add(packed.median / simd_c8.median, 2);
  }
  cpu.print(std::cout, "F20a: CPU backends (measured)");

  // --- accelerator simulators: modeled DMA/DDR traffic --------------------
  util::Table acc({"resolution", "platform", "map", "DMA in B/px",
                   "modeled fps", "vs full map"});
  for (const auto& res : {rt::kResolutions[2], rt::kResolutions[3]}) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    img::Image8 dst(res.width, res.height, 1);
    const core::Corrector corr =
        core::Corrector::builder(res.width, res.height).build();
    const auto out_px = static_cast<double>(res.width) * res.height;

    const core::PackedMap pm =
        core::pack_map(*corr.map(), res.width, res.height, 14);

    accel::CellLikePlatform cell_float(*corr.map(), res.width, res.height, 1,
                                       accel::SpeConfig{});
    const accel::AccelFrameStats cf =
        cell_float.run_frame(src.view(), dst.view(), 0);
    acc.row()
        .add(res.name)
        .add("cell")
        .add("float")
        .add(static_cast<double>(cf.bytes_in) / out_px, 2)
        .add(cf.fps, 1)
        .add(1.0, 2);
    for (const int stride : strides) {
      const core::CompactMap cm = core::compact_map(
          *corr.map(), res.width, res.height, stride);
      accel::CellLikePlatform cell(cm, 1, accel::SpeConfig{});
      const accel::AccelFrameStats s =
          cell.run_frame(src.view(), dst.view(), 0);
      acc.row()
          .add(res.name)
          .add("cell")
          .add("compact:" + std::to_string(stride))
          .add(static_cast<double>(s.bytes_in) / out_px, 2)
          .add(s.fps, 1)
          .add(s.fps / cf.fps, 2);
    }

    accel::FpgaPlatform fpga_packed(pm, accel::FpgaConfig{});
    const accel::AccelFrameStats fp =
        fpga_packed.run_frame(src.view(), dst.view(), 0);
    acc.row()
        .add(res.name)
        .add("fpga")
        .add("packed")
        .add(static_cast<double>(fp.bytes_in) / out_px, 2)
        .add(fp.fps, 1)
        .add(1.0, 2);
    const core::CompactMap cm8 =
        core::compact_map(*corr.map(), res.width, res.height, 8);
    accel::FpgaPlatform fpga_c8(cm8, accel::FpgaConfig{});
    const accel::AccelFrameStats fc =
        fpga_c8.run_frame(src.view(), dst.view(), 0);
    acc.row()
        .add(res.name)
        .add("fpga")
        .add(fpga_c8.lut_on_chip() ? "compact:8 (BRAM)" : "compact:8")
        .add(static_cast<double>(fc.bytes_in) / out_px, 2)
        .add(fc.fps, 1)
        .add(fc.fps / fp.fps, 2);

    // The same pipeline behind a shared DDR port (~6 B/cycle, a mid-range
    // era board; spec `fpga:ddr=6`): streaming the 8 B/px packed LUT is now
    // the binding constraint, and the compact grid buys the port back.
    accel::FpgaConfig ddr_cfg;
    ddr_cfg.cost.ddr_bytes_per_cycle = 6.0;
    accel::FpgaPlatform fpga_packed_ddr(pm, ddr_cfg);
    const accel::AccelFrameStats fpd =
        fpga_packed_ddr.run_frame(src.view(), dst.view(), 0);
    acc.row()
        .add(res.name)
        .add("fpga ddr=6")
        .add("packed")
        .add(static_cast<double>(fpd.bytes_in) / out_px, 2)
        .add(fpd.fps, 1)
        .add(1.0, 2);
    accel::FpgaPlatform fpga_c8_ddr(cm8, ddr_cfg);
    const accel::AccelFrameStats fcd =
        fpga_c8_ddr.run_frame(src.view(), dst.view(), 0);
    acc.row()
        .add(res.name)
        .add("fpga ddr=6")
        .add(fpga_c8_ddr.lut_on_chip() ? "compact:8 (BRAM)" : "compact:8")
        .add(static_cast<double>(fcd.bytes_in) / out_px, 2)
        .add(fcd.fps, 1)
        .add(fcd.fps / fpd.fps, 2);
  }
  acc.print(std::cout, "F20b: accelerator simulators (modeled)");

  std::cout << "expected shape: compact maps cut map traffic by ~stride^2 "
               "for a sub-quarter-pixel max error at stride 8; the win "
               "grows with resolution as the packed LUT saturates memory; "
               "behind a shared 6 B/cycle DDR port the packed-LUT stream is "
               "the binding constraint and the compact map recovers >=1.3x "
               "throughput.\n";
  return 0;
}
