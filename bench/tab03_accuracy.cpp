// T3 — Accuracy: exact equidistant inversion vs the classical Brown-Conrady
// polynomial baseline, swept over field of view. Reports worst/mean
// geometric error of the polynomial map and the image-space PSNR between
// the two corrected outputs.
#include <cmath>

#include "core/brown_conrady.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("T3",
                   "exact inversion vs Brown-Conrady baseline, 640x480");

  const int w = 640, h = 480;
  util::Table table({"fov deg", "fit half-angle", "max err px",
                     "mean err px", "err@edge px", "PSNR dB"});
  for (const double fov_deg : {120.0, 140.0, 160.0, 170.0, 178.0}) {
    const double fov = util::deg_to_rad(fov_deg);
    const auto cam =
        core::FisheyeCamera::centered(core::LensKind::Equidistant, fov, w, h);
    const core::PerspectiveView view(w, h, cam.lens().focal());
    const core::WarpMap exact = core::build_map(cam, view);
    // The classical toolchain fits the polynomial over the lens' field,
    // capped below the tan singularity.
    const double fit_half = std::min(fov / 2.0, util::deg_to_rad(80.0));
    const core::BrownConrady bc = core::fit_brown_conrady(cam.lens(), fit_half);
    const core::WarpMap poly =
        core::build_brown_conrady_map(bc, cam.cx(), cam.cy(), view);

    double worst = 0.0, sum = 0.0, edge = 0.0;
    std::size_t n = 0;
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) {
        const std::size_t i = exact.index(x, y);
        if (exact.src_x[i] <= -1.0f || exact.src_x[i] >= w) continue;
        const double e = std::hypot(exact.src_x[i] - poly.src_x[i],
                                    exact.src_y[i] - poly.src_y[i]);
        worst = std::max(worst, e);
        sum += e;
        ++n;
        const double r = std::hypot(x - cam.cx(), y - cam.cy());
        if (r > 0.9 * (h / 2.0)) edge = std::max(edge, e);
      }

    // Image-space comparison on a real frame.
    const img::Image8 src = bench::make_input(w, h);
    img::Image8 out_exact(w, h, 1), out_poly(w, h, 1);
    const core::RemapOptions opts{core::Interp::Bilinear,
                                  img::BorderMode::Constant, 0};
    core::remap_rect(src.view(), out_exact.view(), exact, {0, 0, w, h}, opts);
    core::remap_rect(src.view(), out_poly.view(), poly, {0, 0, w, h}, opts);

    table.row()
        .add(fov_deg, 0)
        .add(util::rad_to_deg(fit_half), 0)
        .add(worst, 2)
        .add(sum / static_cast<double>(n), 3)
        .add(edge, 2)
        .add(img::psnr(out_exact.view(), out_poly.view()), 2);
  }
  table.print(std::cout, "T3: geometric error of the polynomial baseline");
  std::cout << "expected shape: sub-pixel agreement at narrow fov; error "
               "(especially at the field edge) grows steeply past ~150 "
               "degrees - the reason the exact inversion replaces the "
               "classical model for true fisheye optics.\n";
  return 0;
}
