// F7 — FPGA-sim: throughput vs clock and block-cache geometry.
//
// The streaming pipeline emits one pixel per cycle except on block-cache
// misses; cache geometry is the design knob that decides whether the
// non-sequential fisheye read pattern stays on-chip.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F7", "FPGA-sim: cache geometry and clock sweeps");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h)
                                   .map_mode(core::MapMode::PackedLut)
                                   .build();
  img::Image8 out(w, h, 1);

  util::Table cache_table({"cache cfg", "capacity Kpx", "hit rate",
                           "stall cyc/px", "fps @150MHz"});
  struct CacheCase {
    const char* name;
    accel::BlockCacheConfig cfg;
  };
  const CacheCase cases[] = {
      {"2KpxDM", {32, 8, 8, 1}},     {"8Kpx2w", {32, 8, 16, 2}},
      {"16Kpx2w", {32, 8, 32, 2}},   {"64Kpx4w", {32, 8, 64, 4}},
      {"256Kpx4w", {32, 8, 256, 4}}, {"64Kpx-tall", {8, 32, 64, 4}},
  };
  const accel::FpgaConfig def_config;
  for (const CacheCase& c : cases) {
    std::ostringstream spec;
    spec << "fpga:cache=" << c.cfg.block_w << 'x' << c.cfg.block_h << 'x'
         << c.cfg.sets << 'x' << c.cfg.ways;
    const auto backend = bench::make_backend(spec.str());
    corr.correct(src.view(), out.view(), *backend);
    const accel::AccelFrameStats& stats =
        dynamic_cast<const accel::FpgaBackend&>(*backend).last_stats();
    const double px = static_cast<double>(w) * h;
    cache_table.row()
        .add(c.name)
        .add(static_cast<double>(c.cfg.capacity_pixels()) / 1024.0, 0)
        .add(stats.cache_hit_rate(), 4)
        .add((stats.cycles - px - def_config.cost.pipeline_depth) / px, 3)
        .add(stats.fps, 1);
  }
  cache_table.print(std::cout, "F7a: cache geometry at 150 MHz");

  util::Table clock_table({"clock MHz", "fps 720p", "fps 1080p"});
  for (const double mhz : {100.0, 150.0, 200.0, 250.0}) {
    double fps[2] = {0.0, 0.0};
    int i = 0;
    for (const auto& res : {rt::kResolutions[2], rt::kResolutions[3]}) {
      const img::Image8 frame = bench::make_input(res.width, res.height);
      const core::Corrector c = core::Corrector::builder(res.width,
                                                         res.height)
                                    .map_mode(core::MapMode::PackedLut)
                                    .build();
      img::Image8 o(res.width, res.height, 1);
      std::ostringstream spec;
      spec << "fpga:clock=" << mhz;
      const auto backend = bench::make_backend(spec.str());
      c.correct(frame.view(), o.view(), *backend);
      fps[i++] =
          dynamic_cast<const accel::FpgaBackend&>(*backend).last_stats().fps;
    }
    clock_table.row().add(mhz, 0).add(fps[0], 1).add(fps[1], 1);
  }
  clock_table.print(std::cout, "F7b: clock sweep (64Kpx 4-way cache)");
  std::cout << "expected shape: hit rate climbs with capacity and saturates "
               "near 1; once misses are rare, fps ~= clock / pixels and "
               "scales linearly with clock.\n";
  return 0;
}
