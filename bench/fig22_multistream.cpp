// F22 — Multi-stream scaling: M cameras on one work-stealing pool.
//
// The serving question the single-frame figures can't answer: how does
// aggregate throughput and per-stream tail latency behave as simulated
// cameras are added to one fixed pool? The load is deliberately mixed —
// stream 0 is a heavy wide-angle camera, the rest are small PTZ-style
// views at assorted resolutions and fields of view — because that is the
// regime where hybrid frame×tile scheduling earns its keep: small frames
// stay cache-local on one worker while the heavy frame recruits idle
// workers via cross-stream steals, and the FIFO frame claim keeps any one
// stream from starving the rest.
//
// Each stream runs closed-loop (its retire callback submits the next
// frame), so the executor is saturated at every sweep point. Reported per
// sweep point: aggregate fps, its ratio vs the solo row (the CI assert),
// per-stream p99 latency extremes, the fairness spread (max−min mean
// submit→first-tile wait across streams), starvation events, and tiles
// stolen cross-stream.
#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "runtime/timer.hpp"
#include "stream/stream_executor.hpp"
#include "util/mathx.hpp"

namespace {

using namespace fisheye;

struct CamSpec {
  int w = 0, h = 0;
  double fov_deg = 0.0;
};

// Stream 0 is the heavy camera; the tail cycles through light PTZ views.
// The mix matters even on a single-core runner: the light streams cost
// 1/36–1/64 of the heavy one, so added streams raise aggregate fps (more
// frames per unit of work) rather than just dividing the machine M ways.
CamSpec spec_for(std::size_t i) {
  if (i == 0) return {768, 432, 180.0};
  switch (i % 3) {
    case 1: return {96, 54, 120.0};
    case 2: return {128, 72, 140.0};
    default: return {96, 54, 160.0};
  }
}

/// Shared per-spec assets: the corrector (plan source) and a short input
/// loop. Built once per distinct spec, reused by every stream and sweep
/// point — F22 measures service, not map generation.
struct SpecAssets {
  std::unique_ptr<core::Corrector> corrector;
  std::vector<img::Image8> inputs;  ///< 3-frame loop
};

SpecAssets make_assets(const CamSpec& spec) {
  SpecAssets a;
  a.corrector = std::make_unique<core::Corrector>(
      core::Corrector::builder(spec.w, spec.h)
          .fov_degrees(spec.fov_deg)
          .config());
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(spec.fov_deg), spec.w,
      spec.h);
  const video::SyntheticVideoSource source(cam, spec.w, spec.h, 1);
  for (int f = 0; f < 3; ++f) a.inputs.push_back(source.frame(f));
  return a;
}

/// One closed-loop stream: the retire callback records the latency and
/// resubmits until `target` frames are in. Retires of one stream are
/// serialized by the executor, so the callback needs no locking.
struct StreamDriver {
  stream::StreamExecutor* exec = nullptr;
  stream::StreamId id = 0;
  const SpecAssets* assets = nullptr;
  img::Image8 out;
  int target = 0;
  std::vector<double> latencies;

  void submit_next(std::uint64_t prev_seq) {
    const auto& inputs = assets->inputs;
    exec->submit(id, inputs[prev_seq % inputs.size()].view(), out.view());
  }
};

struct SweepResult {
  double wall_seconds = 0.0;
  double aggregate_fps = 0.0;
  double p99_min_ms = 0.0, p99_max_ms = 0.0;
  double wait_spread_ms = 0.0;
  std::size_t starved = 0;
  std::size_t stolen = 0;
  std::vector<rt::StreamStats> stats;
  std::vector<std::vector<double>> latencies;  ///< per stream, seconds
};

SweepResult run_sweep(std::map<std::tuple<int, int, int>, SpecAssets>& cache,
                      par::ThreadPool& pool, std::size_t streams,
                      int frames_per_stream) {
  stream::StreamExecutorOptions opts;
  opts.max_streams = streams;
  stream::StreamExecutor exec(pool, opts);

  std::vector<std::unique_ptr<StreamDriver>> drivers;
  for (std::size_t i = 0; i < streams; ++i) {
    const CamSpec spec = spec_for(i);
    const auto key = std::make_tuple(spec.w, spec.h,
                                     static_cast<int>(spec.fov_deg));
    auto it = cache.find(key);
    if (it == cache.end()) it = cache.emplace(key, make_assets(spec)).first;

    auto d = std::make_unique<StreamDriver>();
    d->exec = &exec;
    d->assets = &it->second;
    d->out = img::Image8(spec.w, spec.h, 1);
    d->target = frames_per_stream;
    d->latencies.reserve(static_cast<std::size_t>(frames_per_stream));
    StreamDriver* raw = d.get();
    d->id = exec.add_stream(
        *it->second.corrector, 1,
        [raw](stream::StreamId, std::uint64_t seq, double latency) {
          raw->latencies.push_back(latency);
          if (seq < static_cast<std::uint64_t>(raw->target))
            raw->submit_next(seq);
        });
    drivers.push_back(std::move(d));
  }

  const rt::Stopwatch wall;
  for (auto& d : drivers) d->submit_next(0);
  for (auto& d : drivers)
    exec.wait(d->id, static_cast<std::uint64_t>(d->target));
  exec.drain();

  SweepResult r;
  r.wall_seconds = wall.elapsed_seconds();
  r.aggregate_fps =
      static_cast<double>(streams) * frames_per_stream / r.wall_seconds;
  double wait_min = 0.0, wait_max = 0.0;
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    const rt::StreamStats st = exec.stats(drivers[i]->id);
    const double p99 = rt::percentile(drivers[i]->latencies, 99.0) * 1e3;
    const double mean_wait =
        st.frames > 0 ? st.total_wait_seconds / st.frames : 0.0;
    if (i == 0) {
      r.p99_min_ms = r.p99_max_ms = p99;
      wait_min = wait_max = mean_wait;
    } else {
      r.p99_min_ms = std::min(r.p99_min_ms, p99);
      r.p99_max_ms = std::max(r.p99_max_ms, p99);
      wait_min = std::min(wait_min, mean_wait);
      wait_max = std::max(wait_max, mean_wait);
    }
    r.starved += st.starvation_events;
    r.stolen += st.tiles_stolen;
    r.stats.push_back(st);
    r.latencies.push_back(std::move(drivers[i]->latencies));
  }
  r.wait_spread_ms = (wait_max - wait_min) * 1e3;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F22",
                   "multi-stream scaling, mixed-resolution cameras, one pool");

  const unsigned workers = std::clamp(std::thread::hardware_concurrency(),
                                      2u, 8u);
  par::ThreadPool pool(workers);
  const int frames_per_stream = bench::quick() ? 40 : 120;
  const std::vector<std::size_t> sweep =
      bench::quick() ? std::vector<std::size_t>{1, 2, 8}
                     : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64};

  std::map<std::tuple<int, int, int>, SpecAssets> cache;
  util::Table table({"streams", "workers", "frames", "wall s", "agg fps",
                     "vs solo", "p99 ms (min)", "p99 ms (max)",
                     "wait spread ms", "starved", "stolen tiles"});
  double solo_fps = 0.0;
  SweepResult eight;  // kept for the per-stream detail table
  for (const std::size_t streams : sweep) {
    SweepResult r = run_sweep(cache, pool, streams, frames_per_stream);
    if (streams == 1) solo_fps = r.aggregate_fps;
    table.row()
        .add(streams)
        .add(workers)
        .add(streams * static_cast<std::size_t>(frames_per_stream))
        .add(r.wall_seconds, 3)
        .add(r.aggregate_fps, 1)
        .add(solo_fps > 0.0 ? r.aggregate_fps / solo_fps : 0.0, 2)
        .add(r.p99_min_ms, 2)
        .add(r.p99_max_ms, 2)
        .add(r.wait_spread_ms, 3)
        .add(r.starved)
        .add(r.stolen);
    if (streams == 8) eight = std::move(r);
  }
  table.print(std::cout, "F22: multi-stream scaling");

  if (!eight.stats.empty()) {
    util::Table detail({"stream", "res", "fov", "frames", "p50 ms", "p99 ms",
                        "mean wait ms", "max wait ms", "local", "stolen",
                        "starved"});
    for (std::size_t i = 0; i < eight.stats.size(); ++i) {
      const CamSpec spec = spec_for(i);
      const rt::StreamStats& st = eight.stats[i];
      detail.row()
          .add(i)
          .add(std::to_string(spec.w) + "x" + std::to_string(spec.h))
          .add(spec.fov_deg, 0)
          .add(st.frames)
          .add(rt::percentile(eight.latencies[i], 50.0) * 1e3, 2)
          .add(rt::percentile(eight.latencies[i], 99.0) * 1e3, 2)
          .add(st.frames ? st.total_wait_seconds / st.frames * 1e3 : 0.0, 3)
          .add(st.max_wait_seconds * 1e3, 3)
          .add(st.tiles_local)
          .add(st.tiles_stolen)
          .add(st.starvation_events);
    }
    detail.print(std::cout, "F22: per-stream detail at 8 streams");
  }

  std::cout << "expected shape: aggregate fps grows with stream count — the "
               "added PTZ streams are 36-64x cheaper than the heavy camera, "
               "so 8 mixed streams clear 6x solo throughput even on one "
               "core, and on a real multicore the heavy stream additionally "
               "recruits idle workers (stolen tiles > 0). Wait spread and "
               "starvation stay near zero: FIFO frame claiming serves every "
               "stream.\n";
  return 0;
}
