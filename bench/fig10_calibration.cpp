// F10 — Calibration convergence: RMS reprojection error per LM iteration
// and recovered-parameter error vs detector noise.
#include "calib/calibrate.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F10", "calibration convergence and noise sensitivity");

  const auto truth = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(175.0), 1280, 720);

  // (a) Convergence trace at 0.3 px noise.
  {
    util::Rng rng(42);
    const auto obs = calib::make_grid_correspondences(
        truth, 11, util::deg_to_rad(80.0), 0.3, rng);
    const calib::CalibrationResult result = calib::calibrate_radial(
        core::LensKind::Equidistant, obs, truth.lens().focal() * 1.25,
        truth.cx() + 25.0, truth.cy() - 18.0);
    util::Table table({"iteration", "rms px"});
    for (std::size_t i = 0; i < result.error_history.size(); ++i)
      table.row().add(i).add(result.error_history[i], 5);
    table.print(std::cout, "F10a: LM convergence (0.3 px noise)");
  }

  // (b) Parameter error vs noise level, averaged over 5 seeds each.
  util::Table table({"noise px", "focal err px", "centre err px", "rms px"});
  for (const double noise : {0.0, 0.1, 0.3, 0.5, 1.0, 2.0}) {
    double focal_err = 0.0, centre_err = 0.0, rms = 0.0;
    const int seeds = 5;
    for (int s = 0; s < seeds; ++s) {
      util::Rng rng(100 + static_cast<std::uint64_t>(s));
      const auto obs = calib::make_grid_correspondences(
          truth, 11, util::deg_to_rad(80.0), noise, rng);
      const calib::CalibrationResult r = calib::calibrate_radial(
          core::LensKind::Equidistant, obs, truth.lens().focal() * 1.2,
          truth.cx() + 15.0, truth.cy() - 10.0);
      focal_err += std::abs(r.focal - truth.lens().focal());
      centre_err += std::hypot(r.cx - truth.cx(), r.cy - truth.cy());
      rms += r.rms_error_px;
    }
    table.row()
        .add(noise, 1)
        .add(focal_err / seeds, 4)
        .add(centre_err / seeds, 4)
        .add(rms / seeds, 4);
  }
  table.print(std::cout, "F10b: parameter error vs noise");
  std::cout << "expected shape: error history decreases monotonically; "
               "parameter error grows ~linearly with noise and stays well "
               "under a pixel for sub-pixel detectors.\n";
  return 0;
}
