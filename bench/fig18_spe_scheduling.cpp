// F18 — Cell-sim tile-scheduling ablation.
//
// Finding worth stating plainly: for the *centred* correction the per-tile
// cost field is radially symmetric, so cyclic assignment pairs cheap and
// expensive tiles automatically and every policy produces the same
// makespan (part a — a true null result). Scheduling starts to matter for
// asymmetric workloads: an off-axis virtual-PTZ view puts all the fill
// pixels on one side (part b), where cost-aware policies beat round-robin.
#include "accel/spe_platform.hpp"
#include "core/corrector.hpp"
#include "core/projection.hpp"

#include "bench_common.hpp"

namespace {

using namespace fisheye;

void run_case(util::Table& table, const char* label,
              const core::WarpMap& map, int src_w, int src_h,
              const img::Image8& src, int tiles_per_side) {
  img::Image8 out(map.width, map.height, 1);
  double rr_fps = 0.0;
  for (const accel::TileSchedule policy :
       {accel::TileSchedule::RoundRobin, accel::TileSchedule::GreedyEft,
        accel::TileSchedule::Lpt, accel::TileSchedule::Steal}) {
    accel::SpeConfig config;
    config.schedule = policy;
    config.tile_w = (map.width + tiles_per_side - 1) / tiles_per_side;
    config.tile_h = (map.height + tiles_per_side - 1) / tiles_per_side;
    // Enlarged local store: no forced splits, the ablation controls tile
    // count exactly.
    config.local_store_bytes = 64 * 1024 * 1024;
    accel::CellLikePlatform platform(map, src_w, src_h, 1, config);
    const accel::AccelFrameStats stats =
        platform.run_frame(src.view(), out.view(), 0);
    if (policy == accel::TileSchedule::RoundRobin) rr_fps = stats.fps;
    table.row()
        .add(label)
        .add(accel::tile_schedule_name(policy))
        .add(static_cast<unsigned long long>(stats.tiles))
        .add(stats.fps, 1)
        .add(stats.utilization, 3)
        .add(static_cast<unsigned long long>(stats.steals))
        .add(stats.fps / rr_fps, 3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  rt::print_banner("F18", "Cell-sim tile scheduling policies, 720p source");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  util::Table table({"workload", "policy", "tiles", "modeled fps",
                     "utilization", "steals", "vs round-robin"});

  // (a) Centred correction: radially symmetric cost field.
  const core::Corrector centred = core::Corrector::builder(w, h).build();
  run_case(table, "centred", *centred.map(), w, h, src, 4);

  // (b) Off-axis PTZ view: rays beyond the lens field concentrate on one
  // side, so tile costs are strongly skewed left-to-right.
  // A 100-degree lens panned hard right: only the leftmost ~quarter of
  // the view is real work, the rest is fill -- so an optimal schedule
  // pairs each heavy tile with cheap ones, while column-cyclic round-robin
  // stacks the heavy column onto the same lanes.
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::deg_to_rad(100.0), w,
                                                 h);
  const core::PerspectiveView ptz = core::PerspectiveView::ptz(
      1536, 864, util::deg_to_rad(75.0), util::deg_to_rad(5.0),
      util::deg_to_rad(110.0));
  const core::WarpMap ptz_map = core::build_map(cam, ptz);
  run_case(table, "off-axis ptz", ptz_map, w, h, src, 4);

  table.print(std::cout, "F18: tile scheduling");
  std::cout << "expected shape: centred workloads self-balance (all "
               "policies tie - a genuine null result worth knowing); the "
               "skewed PTZ workload separates them, with cost-aware EFT/"
               "LPT recovering the idle time round-robin leaves on the "
               "cheap side. steal matches the cost-aware policies without "
               "their oracle cost table - idle SPEs take the tail half of "
               "the most loaded SPE's Morton-ordered run, so a few steals "
               "repair what round-robin cannot.\n";
  return 0;
}
