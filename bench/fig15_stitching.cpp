// F15 — Surround-view stitching: throughput vs camera count and blend
// mode, plus panorama quality vs the environment ground truth.
#include <cmath>

#include "image/metrics.hpp"
#include "stitch/environment.hpp"
#include "stitch/stitcher.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F15", "multi-camera stitching (1440x360 panorama)");

  const img::Image8 env = stitch::make_street_environment(2048, 1024);
  const int fw = 480, fh = 480;
  const int pw = 1440, ph = 360;
  const double hfov = util::deg_to_rad(360.0);
  const double vfov = util::deg_to_rad(90.0);

  // Ground truth panorama: sample the environment directly.
  img::Image8 truth(pw, ph, 3);
  for (int y = 0; y < ph; ++y)
    for (int x = 0; x < pw; ++x) {
      const double lon = (static_cast<double>(x) / (pw - 1) - 0.5) * hfov;
      const double lat = (static_cast<double>(y) / (ph - 1) - 0.5) * vfov;
      const util::Vec3 ray{std::sin(lon) * std::cos(lat), std::sin(lat),
                           std::cos(lon) * std::cos(lat)};
      const util::Vec2 uv = stitch::environment_coords(ray, env.width(),
                                                       env.height());
      core::sample_bilinear(env.view(), static_cast<float>(uv.x),
                            static_cast<float>(uv.y),
                            img::BorderMode::Replicate, 0,
                            &truth.at(x, y, 0));
    }

  par::ThreadPool pool(0);
  util::Table table({"cameras", "blend", "coverage %", "setup ms",
                     "ms/frame", "PSNR vs env dB"});
  for (const int n_cams : {2, 3, 4, 6}) {
    // Evenly spaced 185-degree cameras around the rig.
    std::vector<stitch::RigCamera> rig;
    std::vector<img::Image8> frames;
    std::vector<img::ConstImageView<std::uint8_t>> views;
    for (int c = 0; c < n_cams; ++c) {
      rig.push_back(
          {core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                         util::deg_to_rad(185.0), fw, fh),
           util::Mat3::rot_y(2.0 * util::kPi * c / n_cams), fw, fh});
    }
    for (const auto& rc : rig) {
      frames.push_back(stitch::render_from_environment(
          env.view(), rc.camera, rc.world_from_cam, fw, fh));
    }
    for (const auto& f : frames) views.push_back(f.view());

    for (const stitch::BlendMode mode :
         {stitch::BlendMode::Feather, stitch::BlendMode::NearestCamera}) {
      const rt::Stopwatch setup_sw;
      const stitch::PanoramaStitcher stitcher(rig, pw, ph, hfov, vfov, mode);
      const double setup_ms = setup_sw.elapsed_ms();
      img::Image8 pano;
      const rt::RunStats stats = rt::measure(
          [&] { pano = stitcher.stitch(views, &pool); }, 3);
      const double coverage =
          100.0 * (1.0 - static_cast<double>(stitcher.uncovered_pixels()) /
                             (static_cast<double>(pw) * ph));
      table.row()
          .add(n_cams)
          .add(stitch::blend_mode_name(mode))
          .add(coverage, 1)
          .add(setup_ms, 0)
          .add(stats.median * 1e3, 2)
          .add(img::psnr(truth.view(), pano.view()), 2);
    }
  }
  table.print(std::cout, "F15: stitching");
  std::cout << "expected shape: two back-to-back 185-degree lenses just "
               "cover 360 deg (coverage 100% but razor-thin seam weights); "
               "per-frame cost grows sub-linearly with cameras (each adds "
               "work only where it has weight); feather matches or beats "
               "nearest-camera on PSNR by removing seam steps, and the gap "
               "widens with more (more seams) cameras.\n";
  return 0;
}
