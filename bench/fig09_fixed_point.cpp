// F9 — Fixed-point LUT precision ablation: coordinate fractional bits vs
// output quality and LUT behaviour, plus packed vs float kernel speed.
#include "core/remap.hpp"
#include "image/metrics.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F9", "packed-LUT precision sweep at 720p");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const auto serial = bench::make_backend("serial");

  // Float-LUT reference output.
  const core::Corrector ref_corr = core::Corrector::builder(w, h).build();
  img::Image8 ref(w, h, 1);
  ref_corr.correct(src.view(), ref.view(), *serial);
  const int reps = bench::reps_for(w, h, 6);
  const rt::RunStats float_stats =
      bench::measure_backend(ref_corr, src.view(), *serial, reps);

  util::Table table({"frac bits", "coord LSB px", "PSNR vs float dB",
                     "max diff", "ms/frame"});
  table.row()
      .add("float32")
      .add("-")
      .add("inf")
      .add(0)
      .add(float_stats.median * 1e3, 2);
  for (const int bits : {4, 6, 8, 10, 12, 14, 18}) {
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::PackedLut)
                                     .frac_bits(bits)
                                     .build();
    img::Image8 out(w, h, 1);
    corr.correct(src.view(), out.view(), *serial);
    const rt::RunStats stats =
        bench::measure_backend(corr, src.view(), *serial, reps);
    table.row()
        .add(bits)
        .add(1.0 / static_cast<double>(1 << bits), 5)
        .add(img::psnr(ref.view(), out.view()), 2)
        .add(img::max_abs_diff(ref.view(), out.view()))
        .add(stats.median * 1e3, 2);
  }
  table.print(std::cout, "F9: fixed-point precision");
  std::cout << "expected shape: quality saturates once the coordinate LSB "
               "drops below the 8-bit blend quantization (~10 bits); the "
               "integer kernel's speed is precision-independent.\n";
  return 0;
}
