// F9 — Fixed-point LUT precision ablation: coordinate fractional bits vs
// output quality and LUT behaviour, plus packed vs float kernel speed.
#include "core/kernel.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "util/cpu.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F9", "packed-LUT precision sweep at 720p");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const auto serial = bench::make_backend("serial");

  // Float-LUT reference output.
  const core::Corrector ref_corr = core::Corrector::builder(w, h).build();
  img::Image8 ref(w, h, 1);
  ref_corr.correct(src.view(), ref.view(), *serial);
  const int reps = bench::reps_for(w, h, 6);
  const rt::RunStats float_stats =
      bench::measure_backend(ref_corr, src.view(), *serial, reps);

  util::Table table({"frac bits", "coord LSB px", "PSNR vs float dB",
                     "max diff", "ms/frame"});
  table.row()
      .add("float32")
      .add("-")
      .add("inf")
      .add(0)
      .add(float_stats.median * 1e3, 2);
  for (const int bits : {4, 6, 8, 10, 12, 14, 18}) {
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::PackedLut)
                                     .frac_bits(bits)
                                     .build();
    img::Image8 out(w, h, 1);
    corr.correct(src.view(), out.view(), *serial);
    const rt::RunStats stats =
        bench::measure_backend(corr, src.view(), *serial, reps);
    table.row()
        .add(bits)
        .add(1.0 / static_cast<double>(1 << bits), 5)
        .add(img::psnr(ref.view(), out.view()), 2)
        .add(img::max_abs_diff(ref.view(), out.view()))
        .add(stats.median * 1e3, 2);
  }
  table.print(std::cout, "F9: fixed-point precision");

  // The gather datapath is the other face of the same quantization: it
  // keeps the float LUT but rounds bilinear weights to 8.8 fixed point, so
  // its quality sits in the packed-LUT precision class (max diff <= 1 vs
  // the float kernel) while the AVX2 taps buy speed over the SoA kernel.
  {
    // Floor of 3 reps even under --quick: CI asserts on the vs-soa ratio.
    const int dreps = bench::quick() ? 3 : reps;
    util::Table dp({"datapath", "isa", "ms/frame", "fps", "vs soa",
                    "max diff vs float"});
    double soa_s = 0.0;
    auto dp_row = [&](const std::string& spec) {
      const auto backend = bench::make_backend(spec);
      const core::Corrector::Prepared prepared =
          ref_corr.prepare(*backend, 1);
      img::Image8 out(w, h, 1);
      const rt::RunStats stats = rt::measure(
          [&] { ref_corr.correct(prepared, src.view(), out.view()); },
          dreps, 1);
      // min, not median: CI asserts on the vs-soa ratio and shared-runner
      // noise is one-sided (preemption only ever slows a frame down).
      if (soa_s == 0.0) soa_s = stats.min;
      dp.row()
          .add(core::variant_name(prepared.plan.kernel().key().variant))
          .add(util::cpu_info().isa())
          .add(stats.min * 1e3, 2)
          .add(rt::fps_from_seconds(stats.min), 1)
          .add(soa_s / stats.min, 2)
          .add(img::max_abs_diff(ref.view(), out.view()));
    };
    dp_row("simd:threads=1,datapath=soa");
    dp_row("simd:threads=1,datapath=gather");
    dp.print(std::cout, "F9b: float-LUT datapaths (weight quantization)");
  }

  std::cout << "expected shape: quality saturates once the coordinate LSB "
               "drops below the 8-bit blend quantization (~10 bits); the "
               "integer kernel's speed is precision-independent; the gather "
               "datapath matches packed-LUT quality at full coordinate "
               "precision.\n";
  return 0;
}
