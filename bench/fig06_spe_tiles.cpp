// F6 — SPE tile-size sweep: local-store occupancy vs modeled throughput.
//
// Small tiles waste DMA latency (many transfers, little data each); big
// tiles stop fitting the 256 KB local store and get force-split. The sweep
// exposes the sweet spot and reports occupancy + split counts.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F6",
                   "Cell-sim tile-size sweep, 720p gray, 8 SPEs, dbuf");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  img::Image8 out(w, h, 1);

  util::Table table({"tile", "tiles", "splits", "peak LS KB", "modeled fps",
                     "DMA MB/frame"});
  struct TileShape {
    int w;
    int h;
  };
  for (const TileShape t : {TileShape{32, 8}, TileShape{64, 16},
                            TileShape{128, 32}, TileShape{128, 64},
                            TileShape{256, 64}, TileShape{256, 128}}) {
    const auto backend = bench::make_backend(
        "cell:tile=" + std::to_string(t.w) + "x" + std::to_string(t.h));
    corr.correct(src.view(), out.view(), *backend);
    const auto& cell = dynamic_cast<const accel::CellBackend&>(*backend);
    const accel::AccelFrameStats& stats = cell.last_stats();
    const accel::CellLikePlatform* platform = cell.platform();
    table.row()
        .add(std::to_string(t.w) + "x" + std::to_string(t.h))
        .add(stats.tiles)
        .add(stats.tile_splits)
        .add(static_cast<double>(platform->peak_working_set()) / 1024.0, 1)
        .add(stats.fps, 1)
        .add(static_cast<double>(stats.bytes_in + stats.bytes_out) / 1e6, 2);
  }
  table.print(std::cout, "F6: tile sizes");
  std::cout << "expected shape: fps rises with tile size as per-tile DMA "
               "latency amortizes, then plateaus/dips once tiles overflow "
               "the local store and splitting kicks in.\n";
  return 0;
}
