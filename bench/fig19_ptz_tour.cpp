// F19 — Dynamic virtual PTZ: the cost of steering.
//
// A touring operator changes the view every frame, so the warp map must be
// rebuilt — the one cost the static-correction experiments never see.
// Measures render-only (static view), rebuild+render (tour), and the
// standard mitigation of updating the view every Nth frame.
#include "video/ptz_controller.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F19", "virtual PTZ tour, 1280x720 in, 640x360 out");

  const int w = 1280, h = 720;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::kPi, w, h);
  const video::SyntheticVideoSource source(cam, w, h, 1);
  const img::Image8 fish = source.frame(0);

  video::PtzPath path;
  path.keys = {{0.0, {util::deg_to_rad(-50.0), 0.0, util::deg_to_rad(60.0)}},
               {4.0, {util::deg_to_rad(50.0), util::deg_to_rad(15.0),
                      util::deg_to_rad(35.0)}}};

  const int frames = 60;
  img::Image8 out(640, 360, 1);
  util::Table table({"strategy", "ms/frame", "fps", "map rebuilds"});

  auto run = [&](const char* name, int update_every) {
    video::VirtualPtz ptz(cam, 640, 360);
    const rt::Stopwatch sw;
    for (int f = 0; f < frames; ++f) {
      if (update_every > 0 && f % update_every == 0)
        ptz.set_view(path.at(4.0 * f / frames));
      ptz.render(fish.view(), out.view());
    }
    const double ms = sw.elapsed_ms() / frames;
    table.row()
        .add(name)
        .add(ms, 2)
        .add(1e3 / ms, 1)
        .add(ptz.rebuilds());
  };

  run("static view (no steering)", 0);
  run("steer every 4th frame", 4);
  run("steer every 2nd frame", 2);
  run("steer every frame", 1);

  table.print(std::cout, "F19: steering cost");
  std::cout << "expected shape: per-frame steering pays a map rebuild on "
               "top of every render (several x slower at this output "
               "size); updating every Nth frame recovers most of it - the "
               "standard surveillance-system compromise.\n";
  return 0;
}
