// Microbenchmarks (google-benchmark) for the hot kernels: interpolation
// taps, map generation, packing, SoA SIMD kernel, format conversions.
#include <benchmark/benchmark.h>

#include "core/aa_remap.hpp"
#include "core/corrector.hpp"
#include "core/remap.hpp"
#include "image/convert.hpp"
#include "image/pyramid.hpp"
#include "simd/remap_simd.hpp"
#include "video/pipeline.hpp"

namespace {

using namespace fisheye;

struct Fixture {
  int w, h;
  core::FisheyeCamera cam;
  core::PerspectiveView view;
  core::WarpMap map;
  core::PackedMap packed;
  img::Image8 src;
  img::Image8 dst;

  explicit Fixture(int width, int height)
      : w(width),
        h(height),
        cam(core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                          util::kPi, w, h)),
        view(w, h, cam.lens().focal()),
        map(core::build_map(cam, view)),
        packed(core::pack_map(map, w, h, 14)),
        src(w, h, 1),
        dst(w, h, 1) {
    const video::SyntheticVideoSource source(cam, w, h, 1);
    src = source.frame(0);
  }
};

Fixture& fixture720() {
  static Fixture f(1280, 720);
  return f;
}

void BM_RemapFloatLut(benchmark::State& state,
                      core::Interp interp) {
  Fixture& f = fixture720();
  const core::RemapOptions opts{interp, img::BorderMode::Constant, 0};
  for (auto _ : state) {
    core::remap_rect(f.src.view(), f.dst.view(), f.map, {0, 0, f.w, f.h},
                     opts);
    benchmark::DoNotOptimize(f.dst.row(0));
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK_CAPTURE(BM_RemapFloatLut, nearest, core::Interp::Nearest);
BENCHMARK_CAPTURE(BM_RemapFloatLut, bilinear, core::Interp::Bilinear);
BENCHMARK_CAPTURE(BM_RemapFloatLut, bicubic, core::Interp::Bicubic);
BENCHMARK_CAPTURE(BM_RemapFloatLut, lanczos3, core::Interp::Lanczos3);

void BM_RemapPacked(benchmark::State& state) {
  Fixture& f = fixture720();
  for (auto _ : state) {
    core::remap_packed_rect(f.src.view(), f.dst.view(), f.packed,
                            {0, 0, f.w, f.h}, 0);
    benchmark::DoNotOptimize(f.dst.row(0));
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_RemapPacked);

void BM_RemapSimdSoA(benchmark::State& state) {
  Fixture& f = fixture720();
  simd::SoaScratch scratch;
  for (auto _ : state) {
    simd::remap_bilinear_soa(f.src.view(), f.dst.view(), f.map,
                             {0, 0, f.w, f.h}, 0, scratch);
    benchmark::DoNotOptimize(f.dst.row(0));
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_RemapSimdSoA);

void BM_RemapOtf(benchmark::State& state, bool fast) {
  Fixture& f = fixture720();
  const core::RemapOptions opts{core::Interp::Bilinear,
                                img::BorderMode::Constant, 0};
  for (auto _ : state) {
    core::remap_otf_rect(f.src.view(), f.dst.view(), f.cam, f.view,
                         {0, 0, f.w, f.h}, opts, fast);
    benchmark::DoNotOptimize(f.dst.row(0));
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK_CAPTURE(BM_RemapOtf, libm, false);
BENCHMARK_CAPTURE(BM_RemapOtf, fast_math, true);

void BM_MapGeneration(benchmark::State& state) {
  Fixture& f = fixture720();
  for (auto _ : state) {
    core::WarpMap map = core::build_map(f.cam, f.view);
    benchmark::DoNotOptimize(map.src_x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_MapGeneration);

void BM_MapPacking(benchmark::State& state) {
  Fixture& f = fixture720();
  for (auto _ : state) {
    core::PackedMap packed = core::pack_map(f.map, f.w, f.h, 14);
    benchmark::DoNotOptimize(packed.fx.data());
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_MapPacking);

void BM_RgbToGray(benchmark::State& state) {
  const img::Image8 rgb = [] {
    Fixture& f = fixture720();
    const video::SyntheticVideoSource source(f.cam, f.w, f.h, 3);
    return source.frame(0);
  }();
  for (auto _ : state) {
    img::Image8 gray = img::rgb_to_gray(rgb.view());
    benchmark::DoNotOptimize(gray.row(0));
  }
  state.SetItemsProcessed(state.iterations() * rgb.width() * rgb.height());
}
BENCHMARK(BM_RgbToGray);

void BM_Yuv420RoundTrip(benchmark::State& state) {
  const img::Image8 rgb = [] {
    Fixture& f = fixture720();
    const video::SyntheticVideoSource source(f.cam, f.w, f.h, 3);
    return source.frame(0);
  }();
  for (auto _ : state) {
    const img::Yuv420 yuv = img::rgb_to_yuv420(rgb.view());
    img::Image8 back = img::yuv420_to_rgb(yuv);
    benchmark::DoNotOptimize(back.row(0));
  }
  state.SetItemsProcessed(state.iterations() * rgb.width() * rgb.height());
}
BENCHMARK(BM_Yuv420RoundTrip);

void BM_PyramidBuild(benchmark::State& state) {
  Fixture& f = fixture720();
  for (auto _ : state) {
    const img::Pyramid pyr(f.src.view());
    benchmark::DoNotOptimize(pyr.levels());
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_PyramidBuild);

void BM_RemapAaTrilinear(benchmark::State& state) {
  Fixture& f = fixture720();
  static const img::Pyramid pyr(f.src.view());
  for (auto _ : state) {
    core::remap_aa_rect(pyr, f.dst.view(), f.map, {0, 0, f.w, f.h}, 0);
    benchmark::DoNotOptimize(f.dst.row(0));
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_RemapAaTrilinear);

void BM_RemapRgbInterleaved(benchmark::State& state) {
  Fixture& f = fixture720();
  static const img::Image8 rgb = [] {
    Fixture& fx = fixture720();
    const video::SyntheticVideoSource source(fx.cam, fx.w, fx.h, 3);
    return source.frame(0);
  }();
  static img::Image8 out(f.w, f.h, 3);
  const core::RemapOptions opts{core::Interp::Bilinear,
                                img::BorderMode::Constant, 0};
  for (auto _ : state) {
    core::remap_rect(rgb.view(), out.view(), f.map, {0, 0, f.w, f.h}, opts);
    benchmark::DoNotOptimize(out.row(0));
  }
  state.SetItemsProcessed(state.iterations() * f.w * f.h);
}
BENCHMARK(BM_RemapRgbInterleaved);

void BM_SourceBbox(benchmark::State& state) {
  Fixture& f = fixture720();
  for (auto _ : state) {
    const par::Rect box =
        core::source_bbox(f.map, {0, 0, f.w, f.h / 8}, f.w, f.h);
    benchmark::DoNotOptimize(box.x1);
  }
  state.SetItemsProcessed(state.iterations() * f.w * (f.h / 8));
}
BENCHMARK(BM_SourceBbox);

}  // namespace

BENCHMARK_MAIN();
