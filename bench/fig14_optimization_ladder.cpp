// F14 — The incremental optimization ladder, the narrative spine of a
// parallelization study: start from the naive port and apply one
// optimization at a time, reporting the cumulative speedup.
//
// CPU rungs are measured; Cell rungs rerun the cycle model with the
// kernel-quality constant each optimization step buys (scalar gathers ->
// shuffle-based SIMD extraction) and the buffering mode.
#include <algorithm>

#include "accel/accel_backend.hpp"

#include "core/kernel.hpp"
#include "util/cpu.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F14", "cumulative optimization ladder at 720p");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const int reps = bench::reps_for(w, h, 6);

  // --- CPU ladder ---
  util::Table cpu({"step", "ms/frame", "fps", "cumulative speedup"});
  double base = 0.0;
  auto add_row = [&](const char* name, double seconds) {
    if (base == 0.0) base = seconds;
    cpu.row()
        .add(name)
        .add(seconds * 1e3, 2)
        .add(rt::fps_from_seconds(seconds), 1)
        .add(base / seconds, 2);
  };

  {  // 0: on-the-fly libm math, no LUT (the straightforward port)
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::OnTheFly)
                                     .build();
    add_row("naive (otf, libm)",
            bench::measure_spec(corr, src.view(), "serial", 3).median);
  }
  {  // 1: fast-math approximation
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::OnTheFly)
                                     .fast_math(true)
                                     .build();
    add_row("+ fast atan",
            bench::measure_spec(corr, src.view(), "serial", 3).median);
  }
  const core::Corrector lut_corr = core::Corrector::builder(w, h).build();
  {  // 2: precomputed float LUT
    add_row("+ float LUT",
            bench::measure_spec(lut_corr, src.view(), "serial", reps).median);
  }
  {  // 3: fixed-point LUT kernel
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::PackedLut)
                                     .build();
    add_row("+ fixed-point LUT",
            bench::measure_spec(corr, src.view(), "serial", reps).median);
  }
  {  // 4: SoA SIMD restructuring
    add_row("+ SIMD (SoA)",
            bench::measure_spec(lut_corr, src.view(), "simd:threads=1", reps)
                .median);
  }
  {  // 5: threads on top
    add_row("+ threads",
            bench::measure_spec(lut_corr, src.view(), "simd", reps).median);
  }
  cpu.print(std::cout, "F14a: CPU ladder (measured)");

  // --- Datapath ladder at 1080p ---
  // The explicit-intrinsics rung on top of the SoA restructuring: AVX2
  // gather taps + 8.8 fixed-point blend, then the plan-time autotuner
  // picking across (datapath, strip, map) on this host. The datapath and
  // isa columns land in the JSON mirror so BENCH_* artifacts record which
  // kernel produced each number.
  {
    const int dw = 1920, dh = 1080;
    const img::Image8 dsrc = bench::make_input(dw, dh);
    const core::Corrector dcorr = core::Corrector::builder(dw, dh).build();
    // Floor of 5 reps even under --quick: CI asserts on the ratios below,
    // and median-of-3 at ~10 ms/frame still wobbles several percent.
    const int dreps = std::max(5, bench::reps_for(dw, dh, 6));
    util::Table dp({"step", "datapath", "isa", "ms/frame", "fps", "vs soa"});
    double soa_s = 0.0;
    auto dp_row = [&](const char* name, const std::string& spec) {
      const auto backend = bench::make_backend(spec);
      const core::Corrector::Prepared prepared = dcorr.prepare(*backend, 1);
      img::Image8 out(dw, dh, 1);
      const rt::RunStats run = rt::measure(
          [&] { dcorr.correct(prepared, dsrc.view(), out.view()); }, dreps,
          1);
      // min, not median: CI asserts on the ratios, and on a shared runner
      // the noise is one-sided (preemption only ever slows a frame down).
      if (soa_s == 0.0) soa_s = run.min;
      dp.row()
          .add(name)
          .add(core::variant_name(prepared.plan.kernel().key().variant))
          .add(util::cpu_info().isa())
          .add(run.min * 1e3, 2)
          .add(rt::fps_from_seconds(run.min), 1)
          .add(soa_s / run.min, 2);
      dp.annotate(backend->name());
    };
    dp_row("simd (SoA)", "simd:threads=1,datapath=soa");
    dp_row("+ AVX2 gather", "simd:threads=1,datapath=gather");
    dp_row("+ autotuned plan", "simd:threads=1,tuned=auto");
    dp.print(std::cout, "F14c: datapath ladder at 1080p (measured)");
  }

  // --- Cell ladder (cycle model) ---
  util::Table cell({"step", "modeled fps", "cumulative speedup"});
  double cell_base = 0.0;
  auto cell_row = [&](const char* name, const std::string& spec) {
    const auto backend = bench::make_backend(spec);
    img::Image8 out(w, h, 1);
    lut_corr.correct(src.view(), out.view(), *backend);
    const double fps =
        dynamic_cast<const accel::CellBackend&>(*backend).last_stats().fps;
    if (cell_base == 0.0) cell_base = fps;
    cell.row().add(name).add(fps, 1).add(fps / cell_base, 2);
  };
  // cpp: scalar gathers with branchy border code cost ~130 cycles/px; the
  // shuffle-based SIMD extraction of the real port gets that down to 48.
  cell_row("1 SPE, scalar kernel", "cell:spes=1,sbuf,cpp=130");
  cell_row("+ SIMDized kernel", "cell:spes=1,sbuf,cpp=48");
  cell_row("+ double buffering", "cell:spes=1,dbuf,cpp=48");
  cell_row("+ 8 SPEs", "cell:spes=8,dbuf,cpp=48");
  cell.print(std::cout, "F14b: Cell ladder (cycle model)");

  std::cout << "expected shape: each rung buys a real factor; the LUT and "
               "SIMD steps dominate on CPU, kernel SIMDization and SPE "
               "scaling dominate on Cell.\n";
  return 0;
}
