// F14 — The incremental optimization ladder, the narrative spine of a
// parallelization study: start from the naive port and apply one
// optimization at a time, reporting the cumulative speedup.
//
// CPU rungs are measured; Cell rungs rerun the cycle model with the
// kernel-quality constant each optimization step buys (scalar gathers ->
// shuffle-based SIMD extraction) and the buffering mode.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F14", "cumulative optimization ladder at 720p");

  const int w = 1280, h = 720;
  const img::Image8 src = bench::make_input(w, h);
  const int reps = bench::reps_for(w, h, 6);

  // --- CPU ladder ---
  util::Table cpu({"step", "ms/frame", "fps", "cumulative speedup"});
  double base = 0.0;
  auto add_row = [&](const char* name, double seconds) {
    if (base == 0.0) base = seconds;
    cpu.row()
        .add(name)
        .add(seconds * 1e3, 2)
        .add(rt::fps_from_seconds(seconds), 1)
        .add(base / seconds, 2);
  };

  {  // 0: on-the-fly libm math, no LUT (the straightforward port)
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::OnTheFly)
                                     .build();
    add_row("naive (otf, libm)",
            bench::measure_spec(corr, src.view(), "serial", 3).median);
  }
  {  // 1: fast-math approximation
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::OnTheFly)
                                     .fast_math(true)
                                     .build();
    add_row("+ fast atan",
            bench::measure_spec(corr, src.view(), "serial", 3).median);
  }
  const core::Corrector lut_corr = core::Corrector::builder(w, h).build();
  {  // 2: precomputed float LUT
    add_row("+ float LUT",
            bench::measure_spec(lut_corr, src.view(), "serial", reps).median);
  }
  {  // 3: fixed-point LUT kernel
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .map_mode(core::MapMode::PackedLut)
                                     .build();
    add_row("+ fixed-point LUT",
            bench::measure_spec(corr, src.view(), "serial", reps).median);
  }
  {  // 4: SoA SIMD restructuring
    add_row("+ SIMD (SoA)",
            bench::measure_spec(lut_corr, src.view(), "simd:threads=1", reps)
                .median);
  }
  {  // 5: threads on top
    add_row("+ threads",
            bench::measure_spec(lut_corr, src.view(), "simd", reps).median);
  }
  cpu.print(std::cout, "F14a: CPU ladder (measured)");

  // --- Cell ladder (cycle model) ---
  util::Table cell({"step", "modeled fps", "cumulative speedup"});
  double cell_base = 0.0;
  auto cell_row = [&](const char* name, const std::string& spec) {
    const auto backend = bench::make_backend(spec);
    img::Image8 out(w, h, 1);
    lut_corr.correct(src.view(), out.view(), *backend);
    const double fps =
        dynamic_cast<const accel::CellBackend&>(*backend).last_stats().fps;
    if (cell_base == 0.0) cell_base = fps;
    cell.row().add(name).add(fps, 1).add(fps / cell_base, 2);
  };
  // cpp: scalar gathers with branchy border code cost ~130 cycles/px; the
  // shuffle-based SIMD extraction of the real port gets that down to 48.
  cell_row("1 SPE, scalar kernel", "cell:spes=1,sbuf,cpp=130");
  cell_row("+ SIMDized kernel", "cell:spes=1,sbuf,cpp=48");
  cell_row("+ double buffering", "cell:spes=1,dbuf,cpp=48");
  cell_row("+ 8 SPEs", "cell:spes=8,dbuf,cpp=48");
  cell.print(std::cout, "F14b: Cell ladder (cycle model)");

  std::cout << "expected shape: each rung buys a real factor; the LUT and "
               "SIMD steps dominate on CPU, kernel SIMDization and SPE "
               "scaling dominate on Cell.\n";
  return 0;
}
