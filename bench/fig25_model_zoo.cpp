// F25 — Camera-model zoo: every lens model through one hot path.
//
// The zoo's design claim is that a lens (or view) model only changes what
// the map *builder* evaluates at plan time; the steady-state remap is
// model-invariant. F25a prices the plan-time side (map build cost and the
// numeric inversion accuracy each model's theta_from_radius achieves),
// F25b shows the hot-path fps column flat across models, and F25c sweeps
// the output-view projections. All models run at fov=160 — the widest
// field every kind (including rectilinear) can image.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/model_spec.hpp"

namespace {

/// Worst-case |theta_from_radius(radius_from_theta(theta)) - theta| over
/// the swept field of view: the solver's accuracy, analytic models ~1e-16,
/// the Kannala-Brandt Newton/bisection solver bounded by its tolerance.
double inversion_max_error(const fisheye::core::LensModel& lens,
                           double half_fov) {
  const double hi = std::min(half_fov, lens.max_theta());
  double worst = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double theta = hi * i / 1000.0;
    const double err =
        std::abs(lens.theta_from_radius(lens.radius_from_theta(theta)) -
                 theta);
    worst = std::max(worst, err);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F25", "camera-model zoo: plan-time cost vs hot-path fps");

  const char* lens_specs[] = {
      "equidistant:fov=160",
      "equisolid:fov=160",
      "orthographic:fov=160",
      "stereographic:fov=160",
      "rectilinear:fov=160",
      "kannala_brandt:k1=-0.02,k2=0.002,k3=0,k4=0,fov=160",
      "division:lambda=-0.25,fov=160",
  };
  const rt::Resolution resolutions[] = {
      {"VGA", 640, 480}, {"720p", 1280, 720}, {"1080p", 1920, 1080}};
  const std::size_t n_res = bench::quick() ? 1 : std::size(resolutions);
  const int build_reps = bench::quick() ? 1 : 5;

  // F25a: what each model costs where it is allowed to cost — at plan
  // time. Map build evaluates theta_from_radius per output pixel. (The
  // iterative Kannala-Brandt solve is NOT pricier than the analytic
  // inverses in practice: Newton seeded with the equidistant guess
  // converges in a couple of polynomial steps, while the closed forms
  // pay atan/asin/sqrt per pixel.)
  util::Table build({"model", "resolution", "build ms", "Mpix/s",
                     "inv max err"});
  for (const char* text : lens_specs) {
    const core::LensSpec spec = core::LensSpec::parse(text);
    for (std::size_t r = 0; r < n_res; ++r) {
      const auto& res = resolutions[r];
      const auto cam =
          core::FisheyeCamera::centered(spec, res.width, res.height);
      const core::PerspectiveView view(res.width, res.height,
                                       cam.lens().dradius_dtheta(0.0));
      const rt::RunStats stats = rt::measure(
          [&] { (void)core::build_map(cam, view); }, build_reps);
      char err[24];
      std::snprintf(err, sizeof err, "%.2e",
                    inversion_max_error(cam.lens(), spec.fov_rad() / 2.0));
      build.row()
          .add(core::lens_kind_name(spec.kind))
          .add(res.name)
          .add(stats.median * 1e3, 2)
          .add(rt::mpix_per_s(res.width, res.height, stats.median), 1)
          .add(err);
      build.annotate("lens", spec.name());
    }
  }
  build.print(std::cout, "F25a: map-build cost and inversion accuracy");

  // F25b: the steady-state side. Same map representation, same kernel,
  // same tile shapes — the lens only changed the LUT contents. The output
  // is a 90-degree virtual view, well inside every model's 160-degree
  // field, so every output pixel is a real bilinear gather for every
  // model. Residual fps spread is source-footprint locality (strongly
  // compressing models read a smaller, more cache-resident source region),
  // not model math: a model accidentally evaluating its solver per pixel
  // instead of through the LUT would be ~10x off, which is what the CI
  // band around equidistant is there to catch.
  const int w = 640, h = 480;
  const img::Image8 src = bench::make_input(w, h);
  const int reps = bench::quick() ? 3 : bench::reps_for(w, h);
  util::Table hot({"model", "fps", "vs equidistant"});
  double fps_equidistant = 0.0;
  for (const char* text : lens_specs) {
    const core::LensSpec spec = core::LensSpec::parse(text);
    const core::Corrector corr =
        core::Corrector::builder(w, h)
            .lens(spec)
            .view(core::ViewSpec::parse("perspective:fov=90"))
            .build();
    const double fps = rt::fps_from_seconds(
        bench::measure_spec(corr, src.view(), "serial", reps).median);
    if (fps_equidistant == 0.0) fps_equidistant = fps;
    hot.row()
        .add(core::lens_kind_name(spec.kind))
        .add(fps, 1)
        .add(fps / fps_equidistant, 3);
    hot.annotate("lens", spec.name());
  }
  hot.print(std::cout, "F25b: hot-path fps per lens model (VGA, serial)");

  // F25c: output-view projections over the default lens — same flat-fps
  // story on the view axis, with the per-view map build cost alongside.
  const char* view_specs[] = {"perspective", "cylindrical:hfov=200",
                              "equirect", "quadview"};
  util::Table views({"view", "build ms", "fps"});
  for (const char* text : view_specs) {
    const core::ViewSpec vspec = core::ViewSpec::parse(text);
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .lens(core::LensKind::Equidistant)
                                     .view(vspec)
                                     .build();
    const auto cam = core::FisheyeCamera::centered(
        core::LensSpec(core::LensKind::Equidistant), w, h);
    const auto view = vspec.make(w, h, corr.config().out_focal);
    const rt::RunStats bstats = rt::measure(
        [&] { (void)core::build_map(cam, *view); }, build_reps);
    const double fps = rt::fps_from_seconds(
        bench::measure_spec(corr, src.view(), "serial", reps).median);
    views.row().add(vspec.name()).add(bstats.median * 1e3, 2).add(fps, 1);
    views.annotate("view", vspec.name());
  }
  views.print(std::cout, "F25c: output-view sweep (VGA, serial)");

  std::cout << "expected shape: F25b fps stays within cache-locality spread "
               "of equidistant (CI asserts the ratio in [0.5, 2.0] — a model "
               "falling off the LUT path would be ~10x off); F25a inv max "
               "err is ~1e-16 for closed-form inverses vs solver-tolerance "
               "for the guarded Newton solve.\n";
  return 0;
}
