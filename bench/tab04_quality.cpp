// T4 — Quality instrumentation table: line straightness and radial
// contrast before/after correction, per lens model and field of view,
// plus percentile map-error statistics for the polynomial baseline.
#include <cmath>

#include "analysis/quality.hpp"
#include "core/brown_conrady.hpp"
#include "core/corrector.hpp"
#include "core/remap.hpp"
#include "image/synth.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("T4", "quality instruments, 320x240");

  const int w = 320, h = 240;

  // (a) Stripe straightness before/after, per lens kind at 180 degrees.
  util::Table straight({"lens", "bow before px", "bow after px",
                        "improvement"});
  for (const core::LensKind kind :
       {core::LensKind::Equidistant, core::LensKind::Equisolid,
        core::LensKind::Stereographic}) {
    const auto cam =
        core::FisheyeCamera::centered(kind, util::deg_to_rad(178.0), w, h);
    img::Image8 scene(2 * w, 2 * h, 1);
    for (int y = 0; y < scene.height(); ++y)
      for (int x = 452; x <= 456; ++x) scene.at(x, y) = 250;
    const core::WarpMap synth =
        core::build_synthesis_map(cam, 2 * w, 2 * h, 0.5 * w, w, h);
    img::Image8 fish(w, h, 1);
    core::remap_rect(scene.view(), fish.view(), synth, {0, 0, w, h},
                     {core::Interp::Bilinear, img::BorderMode::Constant, 0});
    const core::Corrector corr = core::Corrector::builder(w, h)
                                     .lens(kind)
                                     .fov_degrees(178.0)
                                     .build();
    const auto backend = bench::make_backend("serial");
    img::Image8 corrected(w, h, 1);
    corr.correct(fish.view(), corrected.view(), *backend);
    const analysis::StraightnessReport before =
        analysis::stripe_straightness(fish.view(), h / 6, 5 * h / 6, 100);
    const analysis::StraightnessReport after = analysis::stripe_straightness(
        corrected.view(), h / 6, 5 * h / 6, 100);
    straight.row()
        .add(core::lens_kind_name(kind))
        .add(before.max_deviation_px, 2)
        .add(after.max_deviation_px, 2)
        .add(before.max_deviation_px /
                 std::max(after.max_deviation_px, 1e-3),
             1);
  }
  straight.print(std::cout, "T4a: stripe straightness");

  // (b) Map-error percentiles: exact vs Brown-Conrady per fov.
  util::Table err({"fov deg", "p50 px", "p95 px", "p99 px", "max px"});
  for (const double fov_deg : {120.0, 150.0, 170.0}) {
    const auto cam = core::FisheyeCamera::centered(
        core::LensKind::Equidistant, util::deg_to_rad(fov_deg), w, h);
    const core::PerspectiveView view(w, h, cam.lens().focal());
    const core::WarpMap exact = core::build_map(cam, view);
    const core::BrownConrady bc = core::fit_brown_conrady(
        cam.lens(), std::min(util::deg_to_rad(fov_deg) / 2.0,
                             util::deg_to_rad(80.0)));
    const core::WarpMap poly =
        core::build_brown_conrady_map(bc, cam.cx(), cam.cy(), view);
    const analysis::MapErrorStats s =
        analysis::map_error_stats(exact, poly, w, h);
    err.row()
        .add(fov_deg, 0)
        .add(s.p50, 3)
        .add(s.p95, 3)
        .add(s.p99, 3)
        .add(s.max, 2);
  }
  err.print(std::cout, "T4b: polynomial baseline geometric error");

  // (c) Radial contrast of a corrected Siemens star per interpolation.
  util::Table mtf({"kernel", "band 2", "band 4", "band 6", "band 8"});
  {
    const auto cam = core::FisheyeCamera::centered(
        core::LensKind::Equidistant, util::deg_to_rad(178.0), w, h);
    const img::Image8 star = img::make_siemens_star(2 * w, 2 * h, 48);
    const core::WarpMap synth =
        core::build_synthesis_map(cam, 2 * w, 2 * h, 0.5 * w, w, h);
    img::Image8 fish(w, h, 1);
    core::remap_rect(star.view(), fish.view(), synth, {0, 0, w, h},
                     {core::Interp::Bilinear, img::BorderMode::Constant, 0});
    for (const core::Interp interp :
         {core::Interp::Nearest, core::Interp::Bilinear,
          core::Interp::Bicubic, core::Interp::Lanczos3}) {
      const core::Corrector corr = core::Corrector::builder(w, h)
                                       .fov_degrees(178.0)
                                       .interp(interp)
                                       .build();
      const auto backend = bench::make_backend("serial");
      img::Image8 corrected(w, h, 1);
      corr.correct(fish.view(), corrected.view(), *backend);
      const auto profile =
          analysis::radial_contrast(corrected.view(), 9, h / 2.0 - 2.0);
      mtf.row()
          .add(core::interp_name(interp))
          .add(profile[2], 3)
          .add(profile[4], 3)
          .add(profile[6], 3)
          .add(profile[8], 3);
    }
  }
  mtf.print(std::cout, "T4c: radial contrast after correction");
  std::cout << "expected shape: straightness improves by an order of "
               "magnitude for every model; baseline error percentiles blow "
               "up with fov; higher-order kernels hold contrast slightly "
               "longer toward the rim.\n";
  return 0;
}
