// F2 — Scheduling policy and decomposition comparison.
//
// Per-pixel work varies radially (pixels outside the image circle are pure
// fill), so static decompositions can be imbalanced. Compares every
// schedule x partition combination at 1080p on 4 threads.
#include "bench_common.hpp"

int main() {
  using namespace fisheye;
  rt::print_banner("F2",
                   "schedule x decomposition at 1080p, 4 threads, bilinear");

  const int w = 1920, h = 1080;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const int reps = bench::reps_for(w, h, 12);

  par::ThreadPool pool(4);
  util::Table table({"schedule", "partition", "chunks", "ms/frame", "fps"});
  for (const par::Schedule sched :
       {par::Schedule::Static, par::Schedule::Dynamic, par::Schedule::Guided}) {
    for (const par::PartitionKind part :
         {par::PartitionKind::RowBlocks, par::PartitionKind::RowCyclic,
          par::PartitionKind::Tiles, par::PartitionKind::ColumnBlocks}) {
      core::PoolBackend backend(pool, {sched, part, 0, 128, 64});
      const rt::RunStats stats =
          bench::measure_backend(corr, src.view(), backend, reps);
      const std::size_t chunks =
          par::partition(w, h, part, static_cast<int>(pool.size()) * 4, 128, 64)
              .size();
      table.row()
          .add(par::schedule_name(sched))
          .add(par::partition_name(part))
          .add(chunks)
          .add(stats.median * 1e3, 2)
          .add(rt::fps_from_seconds(stats.median), 1);
    }
  }
  table.print(std::cout, "F2: scheduling policies");
  std::cout << "expected shape: dynamic/guided row-cyclic absorb the radial "
               "load imbalance; column blocks lose to poor row-major "
               "locality.\n";
  return 0;
}
