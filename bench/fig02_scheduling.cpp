// F2 — Scheduling policy and decomposition comparison.
//
// Per-pixel work varies radially (pixels outside the image circle are pure
// fill), so static decompositions can be imbalanced. Compares every
// schedule x partition combination at 1080p on 4 threads.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F2",
                   "schedule x decomposition at 1080p, 4 threads, bilinear");

  const int w = 1920, h = 1080;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const int reps = bench::reps_for(w, h, 12);

  util::Table table(
      {"schedule", "partition", "tiles", "ms/frame", "fps", "imbalance"});
  for (const std::string sched : {"static", "dynamic", "guided"}) {
    for (const std::string part : {"rows", "cyclic", "tiles", "cols"}) {
      const bench::BackendRun r = bench::run_spec(
          corr, src.view(),
          "pool:" + sched + "," + part + ",tile=128x64,threads=4", reps);
      table.row()
          .add(sched)
          .add(part)
          .add(r.tiles.tiles)
          .add(r.run.median * 1e3, 2)
          .add(rt::fps_from_seconds(r.run.median), 1)
          .add(r.tiles.imbalance, 2);
    }
  }
  table.print(std::cout, "F2: scheduling policies");
  std::cout << "expected shape: dynamic/guided row-cyclic absorb the radial "
               "load imbalance; column blocks lose to poor row-major "
               "locality.\n";
  return 0;
}
