// F2 — Scheduling policy and decomposition comparison.
//
// Per-pixel work varies radially (pixels outside the image circle are pure
// fill), so static decompositions can be imbalanced. Part (a) compares
// every schedule x partition combination at 1080p on 4 threads — the
// centred workload, where dynamic/guided/steal must stay within a few
// percent of each other. Part (b) is the workload scheduling exists for:
// an off-axis virtual-PTZ view concentrates all real work on one side of
// the frame, so a static split leaves most threads idle; it compares the
// schedules at 8 threads and reports the steal schedule's counters
// (local/stolen tiles, steal operations).
#include "core/projection.hpp"

#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace fisheye;

/// Bench context for a hand-built map (the off-axis view the Corrector
/// front door does not construct): plan once, measure steady-state frames.
bench::BackendRun run_map_spec(const core::WarpMap& map,
                               img::ConstImageView<std::uint8_t> src,
                               img::ImageView<std::uint8_t> dst,
                               const std::string& spec, int reps) {
  const std::unique_ptr<core::Backend> backend = bench::make_backend(spec);
  core::ExecContext ctx;
  ctx.src = src;
  ctx.dst = dst;
  ctx.map = &map;
  ctx.mode = core::MapMode::FloatLut;
  const core::ExecutionPlan plan = backend->plan(ctx);
  rt::RunStats run =
      rt::measure([&] { backend->execute(plan, ctx); }, reps, 1);
  return {std::move(run), plan.tile_stats(), backend->name()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F2",
                   "schedule x decomposition at 1080p, 4 threads, bilinear");

  const int w = 1920, h = 1080;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  const int reps = bench::reps_for(w, h, 12);

  util::Table table(
      {"schedule", "partition", "tiles", "ms/frame", "fps", "imbalance"});
  for (const std::string sched : {"static", "dynamic", "guided", "steal"}) {
    for (const std::string part : {"rows", "cyclic", "tiles", "cols"}) {
      const bench::BackendRun r = bench::run_spec(
          corr, src.view(),
          "pool:" + sched + "," + part + ",tile=128x64,threads=4", reps);
      table.row()
          .add(sched)
          .add(part)
          .add(r.tiles.tiles)
          .add(r.run.median * 1e3, 2)
          .add(rt::fps_from_seconds(r.run.median), 1)
          .add(r.tiles.imbalance, 2);
      table.annotate(r.name);
    }
  }
  table.print(std::cout, "F2: scheduling policies");

  // (b) Radially/laterally skewed workload: a narrow lens panned hard
  // right puts all real gather work in one part of the output while the
  // rest is constant fill, so a static tile split is maximally imbalanced
  // at 8 threads. This is where plan-time Morton ordering + stealing must
  // beat static while matching the shared-cursor dynamic schedule.
  const auto cam = core::FisheyeCamera::centered(
      core::LensKind::Equidistant, util::deg_to_rad(100.0), w, h);
  const core::PerspectiveView ptz = core::PerspectiveView::ptz(
      w, h, util::deg_to_rad(75.0), util::deg_to_rad(15.0),
      util::deg_to_rad(110.0));
  const core::WarpMap ptz_map = core::build_map(cam, ptz);
  img::Image8 out(w, h, 1);

  util::Table skewed({"schedule", "ms/frame", "fps", "imbalance", "local",
                      "stolen", "steals", "vs static"});
  // CI asserts the steal row's "vs static" ratio on this table, so part
  // (b) keeps a few reps even in quick mode — a single rep on a shared
  // runner is too noisy to gate on.
  const int skew_reps = std::max(reps, 3);
  double static_ms = 0.0;
  for (const std::string sched : {"static", "dynamic", "guided", "steal"}) {
    const bench::BackendRun r = run_map_spec(
        ptz_map, src.view(), out.view(),
        "pool:" + sched + ",tiles,tile=128x64,threads=8", skew_reps);
    const double ms = r.run.median * 1e3;
    if (sched == "static") static_ms = ms;
    skewed.row()
        .add(sched)
        .add(ms, 2)
        .add(rt::fps_from_seconds(r.run.median), 1)
        .add(r.tiles.imbalance, 2)
        .add(static_cast<unsigned long long>(r.tiles.local_tiles))
        .add(static_cast<unsigned long long>(r.tiles.stolen_tiles))
        .add(static_cast<unsigned long long>(r.tiles.steals))
        .add(static_ms / ms, 2);
  }
  skewed.print(std::cout, "F2b: skewed workload, 8 threads");

  std::cout << "expected shape: (a) dynamic/guided/steal absorb the radial "
               "load imbalance and tie within a few percent; column blocks "
               "lose to poor row-major locality. (b) the skewed PTZ frame "
               "separates them - static eats the imbalance, steal repairs "
               "it with a handful of steals while keeping each worker on "
               "source-adjacent tiles.\n";
  return 0;
}
