// F12 — Anti-aliased remap ablation: quality and cost of mip-mapped
// trilinear sampling vs the point-sampled kernels under the strong
// minification of the scene->fisheye synthesis direction.
//
// Ground truth: 4x supersampled box-filtered synthesis (the gold-standard
// area average), downsampled to the target grid.
#include <cmath>

#include "core/aa_remap.hpp"
#include "core/remap.hpp"
#include "image/metrics.hpp"
#include "image/pyramid.hpp"
#include "image/synth.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F12", "anti-aliased vs point-sampled synthesis, 640x480");

  const int fw = 640, fh = 480;
  const int sw = 1280, sh = 960;
  const auto cam = core::FisheyeCamera::centered(core::LensKind::Equidistant,
                                                 util::kPi, fw, fh);
  // Detail-rich scene: fine checkerboard (worst case for aliasing).
  const img::Image8 scene = img::make_checkerboard(sw, sh, 6, 16, 240);
  const core::WarpMap synth =
      core::build_synthesis_map(cam, sw, sh, 0.25 * sw, fw, fh);

  // Gold standard: render at 3x output resolution, box-average down.
  const int ss = 4;
  const core::WarpMap synth_hi =
      core::build_synthesis_map(cam, sw, sh, 0.25 * sw, fw * ss, fh * ss);
  img::Image8 hi(fw * ss, fh * ss, 1);
  core::remap_rect(scene.view(), hi.view(), synth_hi,
                   {0, 0, fw * ss, fh * ss},
                   {core::Interp::Bilinear, img::BorderMode::Constant, 0});
  img::Image8 truth(fw, fh, 1);
  for (int y = 0; y < fh; ++y)
    for (int x = 0; x < fw; ++x) {
      int acc = 0;
      for (int dy = 0; dy < ss; ++dy)
        for (int dx = 0; dx < ss; ++dx)
          acc += hi.at(x * ss + dx, y * ss + dy);
      truth.at(x, y) = static_cast<std::uint8_t>((acc + ss * ss / 2) /
                                                 (ss * ss));
    }

  const rt::Stopwatch pyr_sw;
  const img::Pyramid pyramid(scene.view());
  const double pyr_ms = pyr_sw.elapsed_ms();

  // PSNR per radial band: the minification (and thus the aliasing) grows
  // from ~2x at the centre to unbounded at the rim.
  auto band_psnr = [&](const img::Image8& a, const img::Image8& b,
                       double r0, double r1) {
    const double cx = (fw - 1) * 0.5, cy = (fh - 1) * 0.5;
    double acc = 0.0;
    std::size_t n = 0;
    for (int y = 0; y < fh; ++y)
      for (int x = 0; x < fw; ++x) {
        const double r = std::hypot(x - cx, y - cy);
        if (r < r0 || r >= r1) continue;
        const double d =
            static_cast<double>(a.at(x, y)) - static_cast<double>(b.at(x, y));
        acc += d * d;
        ++n;
      }
    const double mse_v = acc / static_cast<double>(n);
    return mse_v == 0.0 ? 99.0 : 10.0 * std::log10(255.0 * 255.0 / mse_v);
  };
  // Valid radius: the scene plane (focal 0.25*sw, half-height sh/2) covers
  // theta up to atan((sh/2)/(0.25*sw)); beyond that every sampler emits
  // fill. Bands live inside it.
  const double theta_max = std::atan((sh / 2.0) / (0.25 * sw));
  const double rim = cam.lens().radius_from_theta(theta_max) - 2.0;

  util::Table table({"sampler", "ms/frame", "centre dB", "mid dB",
                     "rim dB"});
  img::Image8 out(fw, fh, 1);
  const par::Rect whole{0, 0, fw, fh};

  for (const core::Interp interp :
       {core::Interp::Nearest, core::Interp::Bilinear, core::Interp::Bicubic,
        core::Interp::Lanczos3}) {
    const rt::RunStats stats = rt::measure(
        [&] {
          core::remap_rect(scene.view(), out.view(), synth, whole,
                           {interp, img::BorderMode::Constant, 0});
        },
        5);
    table.row()
        .add(core::interp_name(interp))
        .add(stats.median * 1e3, 2)
        .add(band_psnr(truth, out, 0.0, 0.4 * rim), 2)
        .add(band_psnr(truth, out, 0.4 * rim, 0.8 * rim), 2)
        .add(band_psnr(truth, out, 0.8 * rim, rim), 2);
  }
  const rt::RunStats aa_stats = rt::measure(
      [&] { core::remap_aa_rect(pyramid, out.view(), synth, whole, 0); }, 5);
  table.row()
      .add("mip-trilinear")
      .add(aa_stats.median * 1e3, 2)
      .add(band_psnr(truth, out, 0.0, 0.4 * rim), 2)
      .add(band_psnr(truth, out, 0.4 * rim, 0.8 * rim), 2)
      .add(band_psnr(truth, out, 0.8 * rim, rim), 2);

  table.print(std::cout, "F12: sampling under minification");
  std::cout << "pyramid build (one-time per frame): " << pyr_ms << " ms\n"
            << "expected shape: every point sampler aliases the compressed "
               "rim regardless of tap count; the mip sampler wins on "
               "quality at roughly bilinear cost (plus the pyramid "
               "build).\n";
  return 0;
}
