// F17 — Message-passing cluster: scaling, efficiency, interconnect and
// distribution-strategy comparison. Compute is measured on this host; the
// network is a latency/bandwidth model (see src/cluster/cluster_sim.hpp).
#include "cluster/cluster_sim.hpp"

#include "bench_common.hpp"

int main() {
  using namespace fisheye;
  rt::print_banner("F17", "cluster scale-out at 1080p (gray, bilinear LUT)");

  const int w = 1920, h = 1080;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  img::Image8 out(w, h, 1);

  util::Table table({"ranks", "network", "distribution", "modeled fps",
                     "efficiency", "comm MB/frame"});
  for (const auto& net :
       {cluster::InterconnectModel::gigabit_ethernet(),
        cluster::InterconnectModel::ten_gige(),
        cluster::InterconnectModel::infiniband_qdr()}) {
    for (const int ranks : {1, 2, 4, 8, 16}) {
      cluster::ClusterConfig config;
      config.ranks = ranks;
      config.network = net;
      cluster::ClusterSimBackend backend(config);
      corr.correct(src.view(), out.view(), backend);
      const cluster::ClusterFrameStats& s = backend.last_stats();
      table.row()
          .add(ranks)
          .add(net.name)
          .add("strip-scatter")
          .add(s.fps, 1)
          .add(s.efficiency, 2)
          .add(static_cast<double>(s.bytes_scattered + s.bytes_gathered) /
                   1e6,
               2);
    }
  }
  table.print(std::cout, "F17a: ranks x interconnect");

  util::Table dist({"distribution", "ranks", "scatter MB", "modeled fps"});
  for (const cluster::Distribution d :
       {cluster::Distribution::StripScatter,
        cluster::Distribution::FullBroadcast}) {
    for (const int ranks : {4, 16}) {
      cluster::ClusterConfig config;
      config.ranks = ranks;
      config.distribution = d;
      cluster::ClusterSimBackend backend(config);
      corr.correct(src.view(), out.view(), backend);
      const cluster::ClusterFrameStats& s = backend.last_stats();
      dist.row()
          .add(cluster::distribution_name(d))
          .add(ranks)
          .add(static_cast<double>(s.bytes_scattered) / 1e6, 2)
          .add(s.fps, 1);
    }
  }
  dist.print(std::cout, "F17b: distribution strategy (GigE)");
  std::cout << "expected shape: per-frame scatter/gather makes the kernel "
               "communication-bound on GigE (efficiency collapses with "
               "ranks); faster links push the knee out; strip-scatter "
               "beats full-broadcast by moving ~1/ranks of the source.\n";
  return 0;
}
