// F17 — Message-passing cluster: scaling, efficiency, interconnect and
// distribution-strategy comparison. Compute is measured on this host; the
// network is a latency/bandwidth model (see src/cluster/cluster_sim.hpp).
#include "cluster/cluster_sim.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F17", "cluster scale-out at 1080p (gray, bilinear LUT)");

  const int w = 1920, h = 1080;
  const img::Image8 src = bench::make_input(w, h);
  const core::Corrector corr = core::Corrector::builder(w, h).build();
  img::Image8 out(w, h, 1);

  util::Table table({"ranks", "network", "distribution", "modeled fps",
                     "efficiency", "comm MB/frame"});
  for (const std::string net : {"gige", "10gige", "ib"}) {
    for (const int ranks : {1, 2, 4, 8, 16}) {
      const auto backend = bench::make_backend(
          "cluster:ranks=" + std::to_string(ranks) + ",net=" + net);
      corr.correct(src.view(), out.view(), *backend);
      const cluster::ClusterFrameStats& s =
          dynamic_cast<const cluster::ClusterSimBackend&>(*backend)
              .last_stats();
      table.row()
          .add(ranks)
          .add(net)
          .add("strip-scatter")
          .add(s.fps, 1)
          .add(s.efficiency, 2)
          .add(static_cast<double>(s.bytes_scattered + s.bytes_gathered) /
                   1e6,
               2);
      table.annotate(backend->name());
    }
  }
  table.print(std::cout, "F17a: ranks x interconnect");

  util::Table dist({"distribution", "ranks", "scatter MB", "modeled fps"});
  for (const bool bcast : {false, true}) {
    for (const int ranks : {4, 16}) {
      const auto backend = bench::make_backend(
          "cluster:ranks=" + std::to_string(ranks) +
          (bcast ? ",bcast" : ",scatter"));
      corr.correct(src.view(), out.view(), *backend);
      const cluster::ClusterFrameStats& s =
          dynamic_cast<const cluster::ClusterSimBackend&>(*backend)
              .last_stats();
      dist.row()
          .add(bcast ? "full-broadcast" : "strip-scatter")
          .add(ranks)
          .add(static_cast<double>(s.bytes_scattered) / 1e6, 2)
          .add(s.fps, 1);
    }
  }
  dist.print(std::cout, "F17b: distribution strategy (GigE)");
  std::cout << "expected shape: per-frame scatter/gather makes the kernel "
               "communication-bound on GigE (efficiency collapses with "
               "ranks); faster links push the knee out; strip-scatter "
               "beats full-broadcast by moving ~1/ranks of the source.\n";
  return 0;
}
