// F8 — Resolution scaling and platform crossover: fps vs frame size for
// the best CPU configuration and both simulated accelerators.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main() {
  using namespace fisheye;
  rt::print_banner("F8", "fps vs resolution per platform (gray, bilinear)");

  par::ThreadPool pool(0);  // hardware-sized
  util::Table table({"resolution", "Mpix", "cpu-serial", "cpu-pool",
                     "cpu-simd", "cell-sim", "fpga-sim", "gpu-sim"});
  for (const auto& res : rt::kResolutions) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const core::Corrector fcorr =
        core::Corrector::builder(res.width, res.height).build();
    const core::Corrector pcorr = core::Corrector::builder(res.width,
                                                           res.height)
                                      .map_mode(core::MapMode::PackedLut)
                                      .build();
    const int reps = bench::reps_for(res.width, res.height, 5);

    core::SerialBackend serial;
    core::PoolBackend pooled(pool, {par::Schedule::Dynamic,
                                    par::PartitionKind::RowBlocks, 0, 64, 64});
    core::SimdBackend simd(&pool);
    const double fps_serial = rt::fps_from_seconds(
        bench::measure_backend(fcorr, src.view(), serial, reps).median);
    const double fps_pool = rt::fps_from_seconds(
        bench::measure_backend(fcorr, src.view(), pooled, reps).median);
    const double fps_simd = rt::fps_from_seconds(
        bench::measure_backend(fcorr, src.view(), simd, reps).median);

    img::Image8 out(res.width, res.height, 1);
    accel::CellBackend cell(accel::SpeConfig{});
    fcorr.correct(src.view(), out.view(), cell);
    accel::FpgaBackend fpga(accel::FpgaConfig{});
    pcorr.correct(src.view(), out.view(), fpga);
    accel::GpuBackend gpu(accel::GpuConfig{});
    fcorr.correct(src.view(), out.view(), gpu);

    table.row()
        .add(res.name)
        .add(static_cast<double>(res.width) * res.height / 1e6, 2)
        .add(fps_serial, 1)
        .add(fps_pool, 1)
        .add(fps_simd, 1)
        .add(cell.last_stats().fps, 1)
        .add(fpga.last_stats().fps, 1)
        .add(gpu.last_stats().fps, 1);
  }
  table.print(std::cout, "F8: resolution scaling");
  std::cout << "expected shape: all platforms scale ~1/pixels; accelerator "
               "columns are cycle-model outputs (8-SPE Cell @3.2GHz, FPGA "
               "@150MHz) and hold their ~constant ratio over the CPU "
               "columns, which depend on this host.\n";
  return 0;
}
