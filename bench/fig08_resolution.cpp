// F8 — Resolution scaling and platform crossover: fps vs frame size for
// the best CPU configuration and both simulated accelerators.
#include "accel/accel_backend.hpp"

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F8", "fps vs resolution per platform (gray, bilinear)");

  util::Table table({"resolution", "Mpix", "cpu-serial", "cpu-pool",
                     "cpu-simd", "cell-sim", "fpga-sim", "gpu-sim"});
  for (const auto& res : rt::kResolutions) {
    const img::Image8 src = bench::make_input(res.width, res.height);
    const core::Corrector fcorr =
        core::Corrector::builder(res.width, res.height).build();
    const core::Corrector pcorr = core::Corrector::builder(res.width,
                                                           res.height)
                                      .map_mode(core::MapMode::PackedLut)
                                      .build();
    const int reps = bench::reps_for(res.width, res.height, 5);

    const double fps_serial = rt::fps_from_seconds(
        bench::measure_spec(fcorr, src.view(), "serial", reps).median);
    const double fps_pool = rt::fps_from_seconds(
        bench::measure_spec(fcorr, src.view(), "pool:dynamic,rows", reps)
            .median);
    const double fps_simd = rt::fps_from_seconds(
        bench::measure_spec(fcorr, src.view(), "simd", reps).median);

    img::Image8 out(res.width, res.height, 1);
    const auto cell = bench::make_backend("cell");
    fcorr.correct(src.view(), out.view(), *cell);
    const auto fpga = bench::make_backend("fpga");
    pcorr.correct(src.view(), out.view(), *fpga);
    const auto gpu = bench::make_backend("gpu");
    fcorr.correct(src.view(), out.view(), *gpu);

    table.row()
        .add(res.name)
        .add(static_cast<double>(res.width) * res.height / 1e6, 2)
        .add(fps_serial, 1)
        .add(fps_pool, 1)
        .add(fps_simd, 1)
        .add(dynamic_cast<const accel::CellBackend&>(*cell).last_stats().fps,
             1)
        .add(dynamic_cast<const accel::FpgaBackend&>(*fpga).last_stats().fps,
             1)
        .add(dynamic_cast<const accel::GpuBackend&>(*gpu).last_stats().fps,
             1);
  }
  table.print(std::cout, "F8: resolution scaling");
  std::cout << "expected shape: all platforms scale ~1/pixels; accelerator "
               "columns are cycle-model outputs (8-SPE Cell @3.2GHz, FPGA "
               "@150MHz) and hold their ~constant ratio over the CPU "
               "columns, which depend on this host.\n";
  return 0;
}
