// F24 — Process-level sharding: 1 -> N worker processes on one host,
// frames through a shared-memory ring (src/shard). Measured on this
// machine (fps, p99 latency, shm transport), side by side with the
// cluster simulator's model of the same strip decomposition over an
// ideal-latency interconnect — the modeled column shows what the strip
// math promises, the measured one what fork + shm + supervision deliver
// on this host's core count.
#include <cstring>
#include <thread>
#include <tuple>

#include "bench_common.hpp"
#include "cluster/cluster_sim.hpp"
#include "runtime/timer.hpp"
#include "shard/shard_backend.hpp"

namespace {

struct Sharded {
  double fps = 0.0;
  double p99_ms = 0.0;
  double transport_mb = 0.0;  ///< shm bytes per frame (src in + strips out)
  std::size_t fallbacks = 0;
  std::size_t respawns = 0;
  std::string spec;
};

Sharded run_sharded(const fisheye::core::Corrector& corr,
                    fisheye::img::ConstImageView<std::uint8_t> src,
                    int workers, int frames) {
  using namespace fisheye;
  const auto backend = bench::make_backend(
      "shard:workers=" + std::to_string(workers));
  auto& sb = dynamic_cast<shard::ShardBackend&>(*backend);
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  const core::Corrector::Prepared prepared = corr.prepare(*backend, 1);
  corr.correct(prepared, src, out.view());  // warm: fleet up, pages faulted
  const rt::ShardStats before = sb.last_stats();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const rt::Stopwatch sw;
    corr.correct(prepared, src, out.view());
    samples.push_back(sw.elapsed_seconds());
  }
  const rt::ShardStats after = sb.last_stats();
  Sharded r;
  r.fps = 1.0 / rt::percentile(samples, 50.0);
  r.p99_ms = rt::percentile(samples, 99.0) * 1e3;
  const std::size_t moved =
      (after.transport_in_bytes + after.transport_out_bytes) -
      (before.transport_in_bytes + before.transport_out_bytes);
  r.transport_mb =
      static_cast<double>(moved) / static_cast<double>(frames) / 1e6;
  r.fallbacks = after.fallback_strips - before.fallback_strips;
  r.respawns = after.respawns;
  r.spec = backend->name();
  return r;
}

double modeled_fps(const fisheye::core::Corrector& corr,
                   fisheye::img::ConstImageView<std::uint8_t> src,
                   int ranks) {
  using namespace fisheye;
  const auto backend = bench::make_backend(
      "cluster:ranks=" + std::to_string(ranks) + ",net=ib");
  img::Image8 out(corr.config().out_width, corr.config().out_height,
                  src.channels);
  corr.correct(src, out.view(), *backend);
  return dynamic_cast<const cluster::ClusterSimBackend&>(*backend)
      .last_stats()
      .fps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fisheye;
  bench::init(argc, argv);
  rt::print_banner("F24",
                   "process sharding: shm frame ring, forked workers");
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "host cores: " << cores << "\n";

  for (const auto& [w, h, label] :
       {std::tuple{1280, 720, "720p"}, std::tuple{1920, 1080, "1080p"}}) {
    const img::Image8 src = bench::make_input(w, h);
    const core::Corrector corr = core::Corrector::builder(w, h).build();
    const int frames = bench::quick() ? 3 : (h >= 1080 ? 20 : 40);

    util::Table table({"processes", "cores", "fps", "speedup", "p99 ms",
                       "shm MB/frame", "fallbacks", "modeled fps (cluster)"});
    double base_fps = 0.0;
    for (const int workers : {1, 2, 4, 8}) {
      const Sharded r = run_sharded(corr, src.view(), workers, frames);
      if (workers == 1) base_fps = r.fps;
      table.row()
          .add(workers)
          .add(static_cast<int>(cores))
          .add(r.fps, 1)
          .add(base_fps > 0.0 ? r.fps / base_fps : 0.0, 2)
          .add(r.p99_ms, 2)
          .add(r.transport_mb, 2)
          .add(r.fallbacks)
          .add(modeled_fps(corr, src.view(), workers), 1);
      table.annotate(r.spec);
    }
    table.print(std::cout,
                std::string("F24a: process sweep at ") + label);
  }

  // Ingest mode: the supervisor's staging copy vs rendering directly into
  // the ring slot the next frame reads (zero-copy source path).
  {
    const int w = 1920, h = 1080;
    const img::Image8 src = bench::make_input(w, h);
    const core::Corrector corr = core::Corrector::builder(w, h).build();
    const int frames = bench::quick() ? 3 : 20;
    const int workers = 4;
    const auto backend = bench::make_backend(
        "shard:workers=" + std::to_string(workers));
    auto& sb = dynamic_cast<shard::ShardBackend&>(*backend);
    img::Image8 out(w, h, 1);
    const core::Corrector::Prepared prepared = corr.prepare(*backend, 1);
    corr.correct(prepared, src.view(), out.view());

    util::Table ingest({"ingest", "fps", "src copy MB/frame"});
    const std::size_t row_bytes = static_cast<std::size_t>(w);
    for (const bool zero_copy : {false, true}) {
      std::vector<double> samples;
      rt::ShardStats t0 = sb.last_stats();
      for (int f = 0; f < frames; ++f) {
        const rt::Stopwatch sw;
        if (zero_copy) {
          const img::View8 in = sb.next_input();
          for (int y = 0; y < h; ++y)
            std::memcpy(in.row(y), src.view().row(y), row_bytes);
          corr.correct(prepared, in, out.view());
        } else {
          corr.correct(prepared, src.view(), out.view());
        }
        samples.push_back(sw.elapsed_seconds());
      }
      rt::ShardStats t1 = sb.last_stats();
      ingest.row()
          .add(zero_copy ? "ring-slot (zero-copy)" : "staged copy")
          .add(1.0 / rt::percentile(samples, 50.0), 1)
          .add(static_cast<double>(t1.transport_in_bytes -
                                   t0.transport_in_bytes) /
                   frames / 1e6,
               2);
      ingest.annotate(sb.name());
    }
    ingest.print(std::cout, "F24b: ingest path at 1080p, 4 processes");
  }

  std::cout << "expected shape: near-linear fps scaling while processes "
               "<= cores (strips are embarrassingly parallel; the ring "
               "moves ~2 frames of bytes per frame), then flat — the "
               "modeled cluster column shows the same knee without fork "
               "or shm costs. Zero-copy ingest removes the source copy "
               "from the supervisor's critical path.\n";
  return 0;
}
